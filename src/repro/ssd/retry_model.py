"""Empirical retry profiles: the bridge from chip-level to system-level.

Running the cell-accurate flash model for every I/O of a multi-hour block
trace would be absurd; the paper itself feeds SSDSim with the retry
behaviour measured on its real chips.  We do the same: a
:class:`RetryProfile` measures the joint distribution of (retries, auxiliary
single-voltage reads) per page type for a given read policy on an aged
block, then replays i.i.d. samples per simulated read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.engine import ParallelMap, WordlineShard, plan_wordline_shards
from repro.flash.chip import FlashChip
from repro.obs import OBS
from repro.retry.policy import ReadPolicy
from repro.ssd.timing import NandTiming

#: Cells per columnar sub-batch of a measure shard (bounds peak memory on
#: whole-block sweeps at paper scale: ~150 MB of column arrays per batch).
_MEASURE_BATCH_CELLS = 1 << 23


@dataclass(frozen=True)
class _MeasureTask:
    """Everything a worker needs to measure one shard of wordlines.

    The chip is rebuilt worker-side from ``(spec, seed, sentinel_ratio,
    stress)`` — by construction that yields exactly the wordlines the
    caller's chip would (the seed tree keys all randomness by wordline
    identity), so sharding cannot change a single sample.
    """

    spec: object
    seed: int
    sentinel_ratio: float
    stress: object
    policy: ReadPolicy
    pages: Tuple[int, ...]
    hint_fn: Optional[Callable[..., float]]
    emit: bool  # emit read_complete inline (serial in-process mode only)
    batched: bool = True  # columnar batch path (bit-identical)


def _outcome_row(p: int, outcome) -> tuple:
    return (
        p,
        outcome.retries,
        outcome.extra_single_reads,
        outcome.calibration_steps,
        bool(outcome.success),
    )


def _measure_shard(task: _MeasureTask, shard: WordlineShard) -> List[tuple]:
    """Measure one shard; rows in (wordline, page) sweep order."""
    if task.batched:
        return _measure_shard_batched(task, shard)
    chip = FlashChip(
        task.spec, task.seed, task.sentinel_ratio, cache_wordlines=1
    )
    chip.set_block_stress(shard.block, task.stress)
    rows: List[tuple] = []
    for wl in chip.iter_wordlines(shard.block, shard.wordlines):
        hint = task.hint_fn(wl) if task.hint_fn is not None else None
        for p in task.pages:
            outcome = task.policy.read(wl, p, hint=hint)
            rows.append(_outcome_row(p, outcome))
            if task.emit and OBS.enabled and OBS.tracer.enabled:
                _emit_read_complete(task.policy.name, rows[-1])
    return rows


def _measure_shard_batched(task: _MeasureTask, shard: WordlineShard) -> List[tuple]:
    """Columnar form of ``_measure_shard``: same rows, batched kernels.

    The shard's wordlines are built as :class:`BlockColumns` sub-batches
    (one batched synthesize instead of per-wordline materialization).
    Policies that override :meth:`ReadPolicy.read_batch` (data-independent
    retry ladders) then read all rows in kernel lockstep; everything else
    reads per-row through wordline views, which is the byte-for-byte
    serial code path over the same arrays.  Each wordline's draws come
    from its own seed-tree streams in the serial order either way, so the
    rows are bit-identical to the per-wordline path.
    """
    from repro.flash.block import BlockColumns

    lockstep = type(task.policy).read_batch is not ReadPolicy.read_batch
    rows: List[tuple] = []
    indices = list(shard.wordlines)
    per_batch = max(1, _MEASURE_BATCH_CELLS // max(task.spec.cells_per_wordline, 1))
    for b0 in range(0, len(indices), per_batch):
        cols = BlockColumns(
            task.spec,
            task.seed,
            shard.block,
            indices[b0 : b0 + per_batch],
            task.sentinel_ratio,
            stress=task.stress,
        )
        if lockstep:
            hints = None
            if task.hint_fn is not None:
                hints = [task.hint_fn(v) for v in cols.iter_views()]
            outcomes = task.policy.read_batch(cols, task.pages, hints)
            for row_outcomes in outcomes:
                for p, outcome in zip(task.pages, row_outcomes):
                    rows.append(_outcome_row(p, outcome))
                    if task.emit and OBS.enabled and OBS.tracer.enabled:
                        _emit_read_complete(task.policy.name, rows[-1])
        else:
            for wl in cols.iter_views():
                hint = task.hint_fn(wl) if task.hint_fn is not None else None
                for p in task.pages:
                    outcome = task.policy.read(wl, p, hint=hint)
                    rows.append(_outcome_row(p, outcome))
                    if task.emit and OBS.enabled and OBS.tracer.enabled:
                        _emit_read_complete(task.policy.name, rows[-1])
    return rows


def _emit_read_complete(policy_name: str, row: tuple) -> None:
    page, retries, extra, calibration_steps, success = row
    OBS.tracer.emit(
        "read_complete",
        policy=policy_name,
        page=page,
        retries=retries,
        extra=extra,
        calibration_steps=calibration_steps,
        success=success,
    )


#: measure() invocations that emitted span trees, for unique trace ids —
#: advanced identically by serial and sharded runs of the same process
_MEASURE_SPAN_RUNS = 0


def _emit_read_spans(
    trace: str, row: tuple, n_voltages: int, timing: NandTiming, t0: float
) -> float:
    """Emit one chip-level read's span tree in deterministic virtual time.

    Same phase decomposition as the serving layer (sense with the
    sentinel inference, transfer + host ECC, auxiliary single-voltage
    reads, retry rounds); the last child is clamped to the root's end so
    the phases tile it exactly.  Returns the read's duration so the
    caller can advance its cumulative clock."""
    page, retries, extra, calibration_steps, success = row
    duration = timing.read_us(n_voltages, retries, extra)
    t1 = t0 + duration
    OBS.tracer.emit(
        "span", trace=trace, span=0, parent=None, name="chip_read",
        t0=t0, t1=t1, page=page, retries=retries, extra=extra,
        calibration_steps=calibration_steps, success=success,
    )
    phases: List[tuple] = [
        ("sense", timing.sense_us(n_voltages), {}),
        ("xfer_ecc", timing.t_transfer_us, {}),
    ]
    if extra:
        phases.append((
            "aux_reads",
            extra * (timing.sense_us(1) + timing.t_transfer_us),
            {"count": extra},
        ))
    for r in range(1, retries + 1):
        phases.append((
            "retry_round",
            timing.sense_us(n_voltages) + timing.t_transfer_us,
            {"round": r},
        ))
    t = t0
    for j, (pname, pdur, pattrs) in enumerate(phases):
        p_t1 = t1 if j == len(phases) - 1 else t + pdur
        OBS.tracer.emit(
            "span", trace=trace, span=j + 1, parent=0, name=pname,
            t0=t, t1=p_t1, **pattrs,
        )
        t = p_t1
    return duration


@dataclass
class RetryProfile:
    """Per-page-type empirical (retries, extra single reads) samples."""

    policy_name: str
    page_voltages: Dict[int, int]  # page type -> voltages per full read
    samples: Dict[int, np.ndarray]  # page type -> (n, 2) [retries, extra]
    #: the measured policy pipelines speculative retry sensing (Park et
    #: al.); replayed reads price retries with the sense/transfer overlap
    #: shaved (see :meth:`NandTiming.read_us`)
    pipelined: bool = False

    # ------------------------------------------------------------------
    @classmethod
    def measure(
        cls,
        chip: FlashChip,
        policy: ReadPolicy,
        block: int = 0,
        wordlines: Optional[Sequence[int]] = None,
        pages: Optional[Sequence[int]] = None,
        hint_fn: Optional[Callable[..., float]] = None,
        name: Optional[str] = None,
        workers: int = 1,
        batched: bool = True,
    ) -> "RetryProfile":
        """Measure a policy on one (aged) block of the chip model.

        ``hint_fn(wordline)`` supplies a cached sentinel-voltage offset per
        wordline, passed as the ``hint`` of every read — this is how the
        serving layer measures its *warm* profile (reads that start from a
        voltage-cache hit) alongside the cold one.  ``name`` overrides the
        stored policy name so both profiles stay distinguishable.

        With ``workers > 1`` the wordline sweep fans out over
        :class:`repro.engine.ParallelMap`; the samples are byte-identical
        to a serial run because each wordline's randomness derives from its
        own seed-tree streams.  Policy-internal trace events are lost in
        worker processes; the parent re-emits one ``read_complete`` per
        read, in canonical sweep order, after the merge.

        ``batched=True`` (the default) measures through the columnar
        :class:`repro.flash.block.BlockColumns` store — batched synthesize
        plus, for lockstep-capable policies, batched sense/decode kernels.
        The samples are bit-identical either way; ``batched=False`` keeps
        the per-wordline reference path for cross-checking.
        """
        from functools import partial

        spec = chip.spec
        if wordlines is None:
            step = max(1, spec.wordlines_per_block // 64)
            wordlines = range(0, spec.wordlines_per_block, step)
        page_list = list(pages) if pages is not None else list(
            range(spec.pages_per_wordline)
        )
        collected: Dict[int, List[Tuple[int, int]]] = {p: [] for p in page_list}
        voltages = {
            p: len(spec.gray.page_voltages(p)) for p in page_list
        }
        inline = workers <= 1  # serial: events fire in-process, as before
        task = _MeasureTask(
            spec=spec,
            seed=chip.seed,
            sentinel_ratio=chip.sentinel_ratio,
            stress=chip.block_stress(block),
            policy=policy,
            pages=tuple(page_list),
            hint_fn=hint_fn,
            emit=inline,
            batched=batched,
        )
        shards = plan_wordline_shards(block, wordlines, workers)
        engine = ParallelMap(workers=workers)
        per_shard = engine.run(
            partial(_measure_shard, task), shards, label="profile-measure"
        )
        # span trees always emit here, post-merge, in canonical sweep
        # order — serial and sharded runs produce an identical stream
        spans_on = (
            OBS.enabled and OBS.tracer.enabled and OBS.spans_enabled
        )
        if spans_on:
            global _MEASURE_SPAN_RUNS
            _MEASURE_SPAN_RUNS += 1
            span_label = name or policy.name
            span_timing = NandTiming()
            span_clock = 0.0
            span_index = 0
        for rows in per_shard:
            for row in rows:
                p, retries, extra = row[0], row[1], row[2]
                collected[p].append((retries, extra))
                if not inline and OBS.enabled and OBS.tracer.enabled:
                    _emit_read_complete(policy.name, row)
                if spans_on:
                    trace = (
                        f"measure/{span_label}/"
                        f"{_MEASURE_SPAN_RUNS}/{span_index}"
                    )
                    span_clock += _emit_read_spans(
                        trace, row, voltages[p], span_timing, span_clock
                    )
                    span_index += 1
        return cls(
            policy_name=name or policy.name,
            page_voltages=voltages,
            samples={
                p: np.asarray(v, dtype=np.int64) for p, v in collected.items()
            },
            pipelined=bool(getattr(policy, "pipelined", False)),
        )

    @classmethod
    def ideal(cls, page_types: Sequence[int], voltages: Dict[int, int]) -> "RetryProfile":
        """A zero-retry profile (fresh chip / perfect knowledge)."""
        return cls(
            policy_name="ideal",
            page_voltages=dict(voltages),
            samples={p: np.zeros((1, 2), dtype=np.int64) for p in page_types},
        )

    # ------------------------------------------------------------------
    def sample(
        self, page_type: int, rng: np.random.Generator
    ) -> Tuple[int, int]:
        """Draw one (retries, extra single reads) pair for a page type."""
        pool = self.samples[page_type]
        row = pool[rng.integers(len(pool))]
        return int(row[0]), int(row[1])

    def mean_retries(self, page_type: Optional[int] = None) -> float:
        if page_type is not None:
            return float(self.samples[page_type][:, 0].mean())
        all_rows = np.vstack(list(self.samples.values()))
        return float(all_rows[:, 0].mean())

    def mean_read_us(self, timing: NandTiming) -> float:
        """Analytic mean read service time across page types."""
        total = 0.0
        count = 0
        for p, rows in self.samples.items():
            for retries, extra in rows:
                total += timing.read_us(
                    self.page_voltages[p], retries, extra,
                    pipelined=self.pipelined,
                )
                count += 1
        return total / count if count else 0.0
