"""SSD geometry and FTL configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.flash.spec import FlashSpec


@dataclass(frozen=True)
class SsdConfig:
    """Geometry of the simulated SSD.

    The paper's system experiment simulates "the same settings as the real
    3D NAND flash chips"; the defaults here are a small multi-channel drive,
    scaled so trace simulations finish quickly while still exercising
    channel/die parallelism and garbage collection.
    """

    channels: int = 4
    dies_per_channel: int = 2
    blocks_per_die: int = 64
    pages_per_block: int = 768  # wordlines * pages per wordline, spec-derived
    page_user_bytes: int = 16384
    overprovisioning: float = 0.12
    gc_free_block_threshold: int = 2  # per-die GC trigger
    gc_stop_free_blocks: int = 4  # hysteresis: collect until this many free

    def __post_init__(self) -> None:
        if self.channels < 1 or self.dies_per_channel < 1:
            raise ValueError("need at least one channel and one die")
        if self.blocks_per_die < 4:
            raise ValueError("need at least 4 blocks per die")
        if not 0.0 < self.overprovisioning < 0.5:
            raise ValueError("overprovisioning must be in (0, 0.5)")
        if self.gc_stop_free_blocks <= self.gc_free_block_threshold:
            raise ValueError("gc_stop_free_blocks must exceed the trigger")

    @classmethod
    def for_spec(cls, spec: FlashSpec, **overrides) -> "SsdConfig":
        params = dict(
            pages_per_block=spec.wordlines_per_block * spec.pages_per_wordline,
            page_user_bytes=spec.user_bytes,
        )
        params.update(overrides)
        return cls(**params)

    # ------------------------------------------------------------------
    @property
    def n_dies(self) -> int:
        return self.channels * self.dies_per_channel

    @property
    def total_pages(self) -> int:
        return self.n_dies * self.blocks_per_die * self.pages_per_block

    @property
    def logical_pages(self) -> int:
        """Pages exposed to the host after overprovisioning."""
        return int(self.total_pages * (1.0 - self.overprovisioning))

    @property
    def logical_bytes(self) -> int:
        return self.logical_pages * self.page_user_bytes

    def die_of(self, channel: int, die: int) -> int:
        return channel * self.dies_per_channel + die

    def channel_of_die(self, die_index: int) -> int:
        return die_index // self.dies_per_channel
