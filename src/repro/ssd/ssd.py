"""The SSD device model: schedules FTL operations over dies and channels.

Scheduling model (standard SSDSim-style decomposition):

* a **read** senses on its die (time proportional to the page's read
  voltages, retries and auxiliary reads — priced by the retry profile), then
  transfers over the die's channel;
* a **write** transfers host data over the channel, then programs on the die;
* an **erase** occupies the die;
* operations of one request run in parallel across dies; the request
  completes when its last operation does.

Dies and channels are serially-occupied resources with availability clocks;
requests are admitted in arrival order (open-loop replay of the trace).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.faults import FAULTS
from repro.flash.spec import FlashSpec
from repro.obs import OBS
from repro.ssd.config import SsdConfig
from repro.ssd.events import EventQueue, Resource
from repro.ssd.ftl import PageMappingFtl, PhysicalOp
from repro.ssd.metrics import SimulationReport
from repro.ssd.retry_model import RetryProfile
from repro.ssd.timing import NandTiming
from repro.traces.trace import Trace
from repro.util.rng import derive_rng

# re-export for the package namespace
__all__ = ["Ssd", "SimulationReport"]


class Ssd:
    """One simulated SSD bound to a retry profile (i.e., to a read policy)."""

    def __init__(
        self,
        spec: FlashSpec,
        config: SsdConfig,
        timing: NandTiming,
        retry_profile: RetryProfile,
        seed: int = 0,
    ) -> None:
        self.spec = spec
        self.config = config
        self.timing = timing
        self.profile = retry_profile
        self.ftl = PageMappingFtl(config, seed=seed)
        self.rng = derive_rng(seed, "ssd", retry_profile.policy_name)
        # Reads preempt programs/erases (program-suspend, standard in modern
        # controllers): each die keeps one clock for reads and one for
        # writes/erases; a read arriving during a program pays only the
        # suspend turnaround, not the remaining program time.
        self._die_reads = [Resource(f"die{d}:r") for d in range(config.n_dies)]
        self._die_writes = [Resource(f"die{d}:w") for d in range(config.n_dies)]
        self._channels = [Resource(f"ch{c}") for c in range(config.channels)]
        self.suspend_us = 8.0
        # retries -> number of page reads that needed exactly that many;
        # the scalar total is derived (``retries_sampled``)
        self.retry_histogram: Dict[int, int] = {}

    @property
    def retries_sampled(self) -> int:
        """Total retries drawn so far (derived from the histogram)."""
        return sum(k * v for k, v in self.retry_histogram.items())

    # ------------------------------------------------------------------
    # per-op scheduling
    # ------------------------------------------------------------------
    def _page_type(self, op: PhysicalOp) -> int:
        return op.page % self.spec.pages_per_wordline

    def _schedule_op(self, op: PhysicalOp, earliest_us: float) -> float:
        """Place one op on its die/channel; returns its completion time."""
        channel = self._channels[self.config.channel_of_die(op.die)]
        t = self.timing
        if op.kind == "read":
            read_lane = self._die_reads[op.die]
            write_lane = self._die_writes[op.die]
            ptype = self._page_type(op)
            retries, extra = self.profile.sample(ptype, self.rng)
            self.retry_histogram[retries] = (
                self.retry_histogram.get(retries, 0) + 1
            )
            n_v = self.profile.page_voltages[ptype]
            sense = (1 + retries) * t.sense_us(n_v) + extra * t.sense_us(1)
            if write_lane.busy_until > max(earliest_us, read_lane.busy_until):
                sense += self.suspend_us  # suspend an in-flight program/erase
            transfers = (1 + retries + extra) * t.t_transfer_us
            if FAULTS.active:
                sense += FAULTS.injector.die_stall_us(op.die, earliest_us)
                transfers *= FAULTS.injector.congestion_factor(earliest_us)
            sense_start, sense_end = read_lane.acquire(earliest_us, sense)
            xfer_start, end = channel.acquire(sense_end, transfers)
            if OBS.enabled:
                self._observe_read(op, ptype, retries, extra, read_lane,
                                   channel, sense_start, sense_end,
                                   xfer_start, end)
            return end
        write_lane = self._die_writes[op.die]
        if op.kind == "program":
            xfer_us = t.t_transfer_us
            if FAULTS.active:
                xfer_us *= FAULTS.injector.congestion_factor(earliest_us)
            xfer_start, xfer_end = channel.acquire(earliest_us, xfer_us)
            # the program cannot start while a read is sensing
            start = max(xfer_end, self._die_reads[op.die].busy_until)
            prog_start, end = write_lane.acquire(start, t.t_program_us)
            if OBS.enabled:
                self._observe_write(op, write_lane, prog_start, end,
                                    channel, xfer_start, xfer_end)
            return end
        if op.kind == "erase":
            start = max(earliest_us, self._die_reads[op.die].busy_until)
            erase_start, end = write_lane.acquire(start, t.t_erase_us)
            if OBS.enabled:
                self._observe_write(op, write_lane, erase_start, end)
            return end
        raise ValueError(f"unknown op kind {op.kind!r}")

    # ------------------------------------------------------------------
    # observability (only reached when ``OBS.enabled``)
    # ------------------------------------------------------------------
    def _observe_read(self, op, ptype, retries, extra, read_lane, channel,
                      sense_start, sense_end, xfer_start, end) -> None:
        policy = self.profile.policy_name
        if OBS.metrics.enabled:
            m = OBS.metrics
            m.counter(
                "repro_ssd_reads_total",
                help="scheduled NAND read operations",
                policy=policy, gc=str(op.gc).lower(),
            ).inc()
            m.histogram(
                "repro_ssd_read_service_us",
                help="read service time: sense start to transfer end",
                policy=policy,
            ).observe(end - sense_start)
        if OBS.tracer.enabled:
            tr = OBS.tracer
            tr.emit(
                "read_attempt",
                level="ssd",
                policy=policy,
                die=op.die,
                page_type=ptype,
                gc=op.gc,
                retries=retries,
                extra=extra,
                ts=sense_start,
                service_us=end - sense_start,
            )
            tr.emit("die_busy", resource=read_lane.name,
                    start=sense_start, end=sense_end)
            tr.emit("channel_busy", resource=channel.name,
                    start=xfer_start, end=end)

    def _observe_write(self, op, lane, start, end,
                       channel=None, xfer_start=None, xfer_end=None) -> None:
        policy = self.profile.policy_name
        if OBS.metrics.enabled:
            OBS.metrics.counter(
                "repro_ssd_ops_total",
                help="scheduled NAND program/erase operations",
                policy=policy, kind=op.kind, gc=str(op.gc).lower(),
            ).inc()
        if OBS.tracer.enabled:
            tr = OBS.tracer
            tr.emit("die_busy", resource=lane.name, start=start, end=end)
            if channel is not None:
                tr.emit("channel_busy", resource=channel.name,
                        start=xfer_start, end=xfer_end)

    # ------------------------------------------------------------------
    # trace replay
    # ------------------------------------------------------------------
    def _lpns_of(self, lba_bytes: int, size_bytes: int) -> range:
        page = self.config.page_user_bytes
        first = lba_bytes // page
        last = (lba_bytes + max(size_bytes, 1) - 1) // page
        span = len(self.ftl.mapping)
        return range(int(first % span), int(first % span) + int(last - first) + 1)

    def _wrap(self, lpn: int) -> int:
        return lpn % len(self.ftl.mapping)

    def run_trace(
        self,
        trace: Trace,
        precondition: bool = True,
        max_requests: Optional[int] = None,
    ) -> SimulationReport:
        """Replay a trace open-loop; returns the latency report."""
        if precondition:
            touched = set()
            for req in trace.requests[: max_requests or len(trace.requests)]:
                for lpn in self._lpns_of(req.lba_bytes, req.size_bytes):
                    touched.add(self._wrap(lpn))
            self.ftl.precondition(sorted(touched))

        read_lat: List[float] = []
        write_lat: List[float] = []
        host_reads = host_writes = 0
        # traces keep completion-log order; open-loop replay issues in
        # arrival order (stable sort keeps equal-time ties in file order)
        requests = sorted(
            trace.requests[: max_requests or len(trace.requests)],
            key=lambda r: r.time_s,
        )
        for req in requests:
            arrival_us = req.time_s * 1e6
            completion = arrival_us
            for lpn in self._lpns_of(req.lba_bytes, req.size_bytes):
                lpn = self._wrap(lpn)
                if req.is_read:
                    ops = self.ftl.read_ops(lpn)
                else:
                    ops = self.ftl.write_ops(lpn)
                op_time = arrival_us
                for op in ops:
                    # ops of one lpn are dependent (GC before reuse);
                    # different lpns of the request run in parallel
                    op_time = self._schedule_op(op, op_time)
                completion = max(completion, op_time)
            latency = completion - arrival_us
            if req.is_read:
                read_lat.append(latency)
                host_reads += 1
            else:
                write_lat.append(latency)
                host_writes += 1

        sim_seconds = requests[-1].time_s - requests[0].time_s if requests else 0.0
        return self._report(trace, read_lat, write_lat, host_reads,
                            host_writes, sim_seconds)

    def run_closed_loop(
        self,
        trace: Trace,
        queue_depth: int = 8,
        precondition: bool = True,
        max_requests: Optional[int] = None,
    ) -> SimulationReport:
        """Closed-loop replay: keep ``queue_depth`` requests outstanding.

        Trace arrival times are ignored; a new request is admitted whenever
        one of the outstanding requests completes.  This measures the
        device's *throughput* limit (reported in ``extras['iops']``) and the
        latency under saturation — where read retries hurt the most.

        Admission runs on an :class:`~repro.ssd.events.EventQueue`: each
        request schedules a completion event, and when the device is at
        ``queue_depth`` the loop steps virtual time forward to the earliest
        completion before issuing the next request.
        """
        if precondition:
            touched = set()
            for req in trace.requests[: max_requests or len(trace.requests)]:
                for lpn in self._lpns_of(req.lba_bytes, req.size_bytes):
                    touched.add(self._wrap(lpn))
            self.ftl.precondition(sorted(touched))

        read_lat: List[float] = []
        write_lat: List[float] = []
        host_reads = host_writes = 0
        requests = trace.requests[: max_requests or len(trace.requests)]
        queue = EventQueue()
        outstanding = 0

        def _request_completed() -> None:
            nonlocal outstanding
            outstanding -= 1

        for req in requests:
            while outstanding >= queue_depth and queue.step():
                pass  # advance to the earliest completion to free a slot
            issue_us = queue.now
            completion = issue_us
            for lpn in self._lpns_of(req.lba_bytes, req.size_bytes):
                lpn = self._wrap(lpn)
                ops = (
                    self.ftl.read_ops(lpn) if req.is_read
                    else self.ftl.write_ops(lpn)
                )
                op_time = issue_us
                for op in ops:
                    op_time = self._schedule_op(op, op_time)
                completion = max(completion, op_time)
            outstanding += 1
            queue.schedule(completion, _request_completed)
            latency = completion - issue_us
            if req.is_read:
                read_lat.append(latency)
                host_reads += 1
            else:
                write_lat.append(latency)
                host_writes += 1
        last_completion = queue.run()  # drain the tail of in-flight requests
        report = self._report(
            trace, read_lat, write_lat, host_reads, host_writes,
            last_completion / 1e6,
        )
        if last_completion > 0:
            report.extras["iops"] = len(requests) / (last_completion / 1e6)
        report.extras["queue_depth"] = float(queue_depth)
        return report

    def _report(
        self,
        trace: Trace,
        read_lat: List[float],
        write_lat: List[float],
        host_reads: int,
        host_writes: int,
        sim_seconds: float,
    ) -> SimulationReport:
        horizon = max(
            [r.busy_until for r in self._die_reads]
            + [r.busy_until for r in self._die_writes]
            + [r.busy_until for r in self._channels]
            + [1.0]
        )
        extras = {
            "die_read_utilization": float(
                np.mean([r.utilization(horizon) for r in self._die_reads])
            ),
            "die_write_utilization": float(
                np.mean([r.utilization(horizon) for r in self._die_writes])
            ),
            "channel_utilization": float(
                np.mean([r.utilization(horizon) for r in self._channels])
            ),
        }
        if OBS.enabled and OBS.metrics.enabled:
            extras["obs"] = OBS.metrics.snapshot()
        return SimulationReport(
            trace_name=trace.name,
            policy_name=self.profile.policy_name,
            read_latencies_us=np.asarray(read_lat),
            write_latencies_us=np.asarray(write_lat),
            simulated_seconds=max(sim_seconds, 0.0),
            host_reads=host_reads,
            host_writes=host_writes,
            gc_writes=self.ftl.gc_writes,
            gc_erases=self.ftl.gc_erases,
            write_amplification=self.ftl.write_amplification,
            retry_histogram=dict(self.retry_histogram),
            extras=extras,
        )
