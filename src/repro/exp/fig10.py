"""Figure 10: the error-difference polynomial and its inference accuracy.

Left panels: the degree-5 fit of optimal sentinel-voltage offset versus the
sentinel error-difference rate (training data).  Right panels: per-wordline
groundtruth vs inferred optimum on the *evaluated* chip — a different die of
the same batch, exactly the paper's deployment story.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exp.common import characterization, eval_chip
from repro.flash.optimal import optimal_offset


@dataclass
class Fig10Result:
    kind: str
    sentinel_voltage: int
    # training scatter (left panel)
    train_d_rates: np.ndarray
    train_optima: np.ndarray
    poly_coeffs: np.ndarray
    # evaluation series (right panel)
    wordlines: np.ndarray
    groundtruth: np.ndarray
    inferred: np.ndarray

    @property
    def eval_errors(self) -> np.ndarray:
        return self.inferred - self.groundtruth

    def mean_abs_error(self) -> float:
        return float(np.abs(self.eval_errors).mean())

    def direction_accuracy(self) -> float:
        """Fraction of wordlines where the inferred *direction* is right —
        the property the calibration step relies on."""
        gt = self.groundtruth
        mask = np.abs(gt) > 2  # direction undefined at the origin
        if not mask.any():
            return 1.0
        return float(np.mean(np.sign(self.inferred[mask]) == np.sign(gt[mask])))

    def rows(self) -> list:
        return [
            ("training samples", len(self.train_d_rates)),
            ("mean |inferred - groundtruth| (steps)", round(self.mean_abs_error(), 2)),
            ("direction accuracy", f"{self.direction_accuracy():.1%}"),
        ]


def run_fig10(kind: str = "tlc", wordline_step: int = 2) -> Fig10Result:
    """Fit panel from the training die; accuracy panel from the eval die."""
    result = characterization(kind)
    model = result.model
    chip = eval_chip(kind)
    spec = chip.spec
    indices = np.arange(0, spec.wordlines_per_block, wordline_step)
    groundtruth = np.zeros(len(indices))
    inferred = np.zeros(len(indices))
    for i, wl in enumerate(chip.iter_wordlines(0, indices)):
        groundtruth[i] = optimal_offset(wl, spec.sentinel_voltage)
        readout = wl.sentinel_readout(0.0)
        inferred[i] = model.infer_sentinel_offset(readout.difference_rate)
    return Fig10Result(
        kind=kind,
        sentinel_voltage=spec.sentinel_voltage,
        train_d_rates=result.d_rates,
        train_optima=result.sentinel_optima,
        poly_coeffs=model.difference_poly.coeffs,
        wordlines=indices,
        groundtruth=groundtruth,
        inferred=inferred,
    )
