"""Figure 5: optimal read-voltage offsets at room vs high temperature.

Companion to Figure 4: after one hour at 80 degC the optimal offsets of the
read voltages sit clearly lower (more negative) than after one hour at room
temperature — the optimum moves within a single hour, which is what defeats
periodic tracking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.exp.common import HIGH_TEMP_C, eval_chip
from repro.flash.mechanisms import StressState
from repro.flash.optimal import optimal_offset


@dataclass
class Fig5Result:
    kind: str
    voltages: Sequence[int]
    wordlines: np.ndarray
    room_offsets: Dict[int, np.ndarray]  # vindex -> per-wordline optimum
    high_offsets: Dict[int, np.ndarray]

    def mean_gap(self, vindex: int) -> float:
        """Mean (room - high) optimum gap; positive when heat pushes lower."""
        return float(
            self.room_offsets[vindex].mean() - self.high_offsets[vindex].mean()
        )

    def rows(self) -> list:
        return [
            (
                f"V{v}",
                float(self.room_offsets[v].mean()),
                float(self.high_offsets[v].mean()),
                self.mean_gap(v),
            )
            for v in self.voltages
        ]


def run_fig5(
    kind: str = "qlc",
    voltages: Sequence[int] = (3, 6, 8, 14),
    pe_cycles: int = 3000,
    retention_hours: float = 1.0,
    wordline_step: int = 4,
) -> Fig5Result:
    """Per-wordline optimal offsets of selected voltages, both temperatures."""
    chip = eval_chip(kind)
    spec = chip.spec
    indices = np.arange(0, spec.wordlines_per_block, wordline_step)
    conditions = {
        "room": StressState(pe_cycles=pe_cycles, retention_hours=retention_hours),
        "high": StressState(
            pe_cycles=pe_cycles,
            retention_hours=retention_hours,
            temperature_c=HIGH_TEMP_C,
        ),
    }
    results = {
        name: {v: np.zeros(len(indices)) for v in voltages}
        for name in conditions
    }
    for name, stress in conditions.items():
        chip.set_block_stress(0, stress)
        for i, wl in enumerate(chip.iter_wordlines(0, indices)):
            for v in voltages:
                results[name][v][i] = optimal_offset(wl, v)
    return Fig5Result(
        kind=kind,
        voltages=tuple(voltages),
        wordlines=indices,
        room_offsets=results["room"],
        high_offsets=results["high"],
    )
