"""Figure 4: page RBER after one hour at room vs high temperature.

High temperature accelerates retention loss (Arrhenius), so a block that
spent one hour at 80 degC (inside a busy computer case) shows markedly
higher RBER on every page than the same block after one hour at 25 degC.
The paper uses this to argue that tracking-based methods with daily update
periods cannot follow the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.exp.common import HIGH_TEMP_C, eval_chip
from repro.flash.mechanisms import StressState


@dataclass
class Fig4Result:
    kind: str
    wordlines: np.ndarray
    room_rber: Dict[str, np.ndarray]  # page name -> per-wordline RBER
    high_rber: Dict[str, np.ndarray]

    def mean_ratio(self, page: str) -> float:
        """How much worse one hot hour is than one room-temperature hour."""
        room = self.room_rber[page].mean()
        return float(self.high_rber[page].mean() / max(room, 1e-12))

    def rows(self) -> list:
        return [
            (
                page,
                float(self.room_rber[page].mean()),
                float(self.high_rber[page].mean()),
                self.mean_ratio(page),
            )
            for page in self.room_rber
        ]


def run_fig4(
    kind: str = "qlc",
    pe_cycles: int = 3000,
    retention_hours: float = 1.0,
    wordline_step: int = 2,
    pages: Optional[Sequence[str]] = None,
) -> Fig4Result:
    """Per-wordline RBER of every page under the two temperature conditions.

    The same wordlines (same cells) are evaluated under both stresses — the
    model's latent decomposition guarantees the comparison is apples to
    apples, as it was on the paper's physical chips.
    """
    chip = eval_chip(kind)
    spec = chip.spec
    page_names = list(pages) if pages is not None else list(spec.gray.page_names)
    indices = np.arange(0, spec.wordlines_per_block, wordline_step)
    room = StressState(pe_cycles=pe_cycles, retention_hours=retention_hours)
    hot = StressState(
        pe_cycles=pe_cycles,
        retention_hours=retention_hours,
        temperature_c=HIGH_TEMP_C,
    )
    room_rber = {p: np.zeros(len(indices)) for p in page_names}
    high_rber = {p: np.zeros(len(indices)) for p in page_names}
    for stress, store in ((room, room_rber), (hot, high_rber)):
        chip.set_block_stress(0, stress)
        for i, wl in enumerate(chip.iter_wordlines(0, indices)):
            for page in page_names:
                store[page][i] = wl.page_rber(page)
    return Fig4Result(
        kind=kind, wordlines=indices, room_rber=room_rber, high_rber=high_rber
    )
