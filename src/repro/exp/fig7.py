"""Figure 7: positions of bit errors inside one flash block.

The scatter of error cells over (bitline, wordline) shows two things the
sentinel design rests on: horizontal stripes (error rates differ strongly
*between* wordlines — per-block tracking cannot work) and near-uniformity
*along* each wordline (a small evenly-spread sample of cells predicts the
whole wordline).  Besides the raw scatter we compute the statistics behind
both claims: a chi-square uniformity test along each wordline and the
across-wordline spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exp.common import ONE_YEAR_H, eval_chip
from repro.flash.mechanisms import StressState


@dataclass
class Fig7Result:
    kind: str
    n_cells: int
    points: np.ndarray  # (n_points, 2): wordline, bitline of sampled errors
    per_wordline_errors: np.ndarray  # error count per wordline
    uniform_fraction: float  # wordlines passing the chi-square test
    across_wordline_cv: float  # coefficient of variation of per-WL counts

    def rows(self) -> list:
        return [
            ("error cells sampled", len(self.points)),
            ("uniform wordlines (chi-square p>0.01)", f"{self.uniform_fraction:.1%}"),
            ("across-wordline count CV", f"{self.across_wordline_cv:.2f}"),
        ]


def _chi_square_uniform_p(indices: np.ndarray, n_cells: int, bins: int = 16) -> float:
    """P-value of a chi-square test that error positions are uniform."""
    from scipy import stats

    if len(indices) < bins * 2:
        return 1.0  # too few errors to refute uniformity
    counts, _ = np.histogram(indices, bins=bins, range=(0, n_cells))
    expected = len(indices) / bins
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    return float(stats.chi2.sf(chi2, df=bins - 1))


def run_fig7(
    kind: str = "qlc",
    pe_cycles: int = 3000,
    wordline_step: int = 2,
    max_points_per_wordline: int = 400,
) -> Fig7Result:
    """Collect error positions and uniformity statistics for one block."""
    chip = eval_chip(kind)
    spec = chip.spec
    chip.set_block_stress(
        0, StressState(pe_cycles=pe_cycles, retention_hours=ONE_YEAR_H)
    )
    indices = range(0, spec.wordlines_per_block, wordline_step)
    points: List[Tuple[int, int]] = []
    counts = []
    p_values = []
    for wl in chip.iter_wordlines(0, indices):
        err = wl.error_cell_indices()
        counts.append(len(err))
        p_values.append(_chi_square_uniform_p(err, spec.cells_per_wordline))
        if len(err) > max_points_per_wordline:
            sample = err[:: max(1, len(err) // max_points_per_wordline)]
        else:
            sample = err
        points.extend((wl.index, int(b)) for b in sample)
    counts_arr = np.asarray(counts, dtype=np.float64)
    return Fig7Result(
        kind=kind,
        n_cells=spec.cells_per_wordline,
        points=np.asarray(points, dtype=np.int64).reshape(-1, 2),
        per_wordline_errors=counts_arr,
        uniform_fraction=float(np.mean(np.asarray(p_values) > 0.01)),
        across_wordline_cv=float(counts_arr.std() / max(counts_arr.mean(), 1e-9)),
    )
