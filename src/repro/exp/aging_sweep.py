"""Device-lifetime sweep: retry behaviour as the chip ages.

Not a single paper figure, but the arc the whole paper draws: fresh blocks
read in one attempt everywhere; as P/E cycles and retention accumulate, the
default voltages start failing and the vendor ladder's cost grows roughly
linearly with the shift, while the sentinel controller stays pinned near
one retry until even the optimal voltages exceed the ECC — the device's
true end of life.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.controller import SentinelController
from repro.exp.common import ONE_YEAR_H, default_ecc, eval_chip, trained_model
from repro.flash.mechanisms import StressState
from repro.retry import CurrentFlashPolicy, OraclePolicy
from repro.ssd.timing import NandTiming


@dataclass
class AgingSweepResult:
    kind: str
    pe_cycles: Sequence[int]
    retries: Dict[str, np.ndarray]  # policy -> per-PE mean retries
    latency_us: Dict[str, np.ndarray]  # policy -> per-PE mean read latency
    failures: Dict[str, np.ndarray]  # policy -> per-PE failed-read fraction

    def first_failing_pe(self, policy: str, threshold: float = 0.5) -> int:
        """First P/E count where most first reads fail (retries >= 1)."""
        for i, pe in enumerate(self.pe_cycles):
            if self.retries[policy][i] >= threshold:
                return pe
        return -1

    def rows(self) -> list:
        out = []
        for i, pe in enumerate(self.pe_cycles):
            out.append(
                (
                    pe,
                    *(
                        round(float(self.retries[p][i]), 2)
                        for p in self.retries
                    ),
                    *(
                        f"{float(self.failures[p][i]):.0%}"
                        for p in self.failures
                    ),
                )
            )
        return out


def run_aging_sweep(
    kind: str = "tlc",
    pe_cycles: Sequence[int] = (0, 1000, 2000, 3000, 4000, 5000, 6000),
    retention_hours: float = ONE_YEAR_H,
    wordline_step: int = 16,
    page: str = "MSB",
) -> AgingSweepResult:
    """Mean retries / latency / failure fraction vs P/E for three policies."""
    chip = eval_chip(kind)
    spec = chip.spec
    ecc = default_ecc(kind)
    timing = NandTiming()
    policies = {
        "current-flash": CurrentFlashPolicy(ecc, spec),
        "sentinel": SentinelController(ecc, trained_model(kind)),
        "opt": OraclePolicy(ecc),
    }
    indices = range(0, spec.wordlines_per_block, wordline_step)
    retries = {name: np.zeros(len(pe_cycles)) for name in policies}
    latency = {name: np.zeros(len(pe_cycles)) for name in policies}
    failures = {name: np.zeros(len(pe_cycles)) for name in policies}
    for i, pe in enumerate(pe_cycles):
        chip.set_block_stress(
            0, StressState(pe_cycles=pe, retention_hours=retention_hours)
        )
        samples = {name: [] for name in policies}
        fails = {name: 0 for name in policies}
        lat = {name: [] for name in policies}
        count = 0
        for wl in chip.iter_wordlines(0, indices):
            count += 1
            for name, policy in policies.items():
                outcome = policy.read(wl, page)
                samples[name].append(outcome.retries)
                lat[name].append(timing.read_outcome_us(outcome))
                fails[name] += not outcome.success
        for name in policies:
            retries[name][i] = float(np.mean(samples[name]))
            latency[name][i] = float(np.mean(lat[name]))
            failures[name][i] = fails[name] / count
    return AgingSweepResult(
        kind=kind,
        pe_cycles=tuple(pe_cycles),
        retries=retries,
        latency_us=latency,
        failures=failures,
    )
