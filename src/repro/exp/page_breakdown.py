"""Per-page-type retry breakdown.

Section I: "MSB pages of high-density flash-memory chips are particularly
vulnerable, as multiple read voltages are required for a single page read.
A successful read needs to tune all the read voltages to proper positions."
This driver quantifies that: mean retries and mean read latency per page
type (LSB/CSB/.../MSB) for the current-flash and sentinel policies on the
aged evaluation block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.controller import SentinelController
from repro.exp.common import default_ecc, eval_chip, trained_model
from repro.retry import CurrentFlashPolicy
from repro.ssd.timing import NandTiming


@dataclass
class PageBreakdownResult:
    kind: str
    page_names: Tuple[str, ...]
    retries: Dict[str, Dict[str, float]]  # policy -> page -> mean retries
    latency_us: Dict[str, Dict[str, float]]  # policy -> page -> mean latency

    def rows(self) -> list:
        out = []
        for page in self.page_names:
            out.append(
                (
                    page,
                    round(self.retries["current-flash"][page], 2),
                    round(self.retries["sentinel"][page], 2),
                    round(self.latency_us["current-flash"][page], 0),
                    round(self.latency_us["sentinel"][page], 0),
                )
            )
        return out

    def msb_worst_for(self, policy: str) -> bool:
        """Whether the MSB page needs the most retries under a policy."""
        per_page = self.retries[policy]
        return per_page["MSB"] >= max(per_page.values()) - 1e-9


def run_page_breakdown(
    kind: str = "qlc",
    wordline_step: int = 8,
) -> PageBreakdownResult:
    """Mean retries/latency per page type for both policies."""
    chip = eval_chip(kind)
    spec = chip.spec
    ecc = default_ecc(kind)
    timing = NandTiming()
    policies = [
        CurrentFlashPolicy(ecc, spec),
        SentinelController(ecc, trained_model(kind)),
    ]
    page_names = spec.gray.page_names
    retries: Dict[str, Dict[str, list]] = {
        p.name: {page: [] for page in page_names} for p in policies
    }
    latency: Dict[str, Dict[str, list]] = {
        p.name: {page: [] for page in page_names} for p in policies
    }
    indices = range(0, spec.wordlines_per_block, wordline_step)
    for wl in chip.iter_wordlines(0, indices):
        for policy in policies:
            for page in page_names:
                outcome = policy.read(wl, page)
                retries[policy.name][page].append(outcome.retries)
                latency[policy.name][page].append(
                    timing.read_outcome_us(outcome)
                )
    return PageBreakdownResult(
        kind=kind,
        page_names=page_names,
        retries={
            name: {page: float(np.mean(v)) for page, v in pages.items()}
            for name, pages in retries.items()
        },
        latency_us={
            name: {page: float(np.mean(v)) for page, v in pages.items()}
            for name, pages in latency.items()
        },
    )
