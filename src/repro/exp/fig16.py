"""Figures 16 and 17: per-voltage error counts of the four methods.

Figure 16 plots, per read voltage of the TLC chip, the bit errors each
wordline sees when read at the default, inferred, calibrated and optimal
voltages; Figure 17 is the same for QLC.  The shapes to reproduce: the
default voltages produce by far the most errors on the low/mid voltages;
inference removes most of that; calibration closes most of the remaining
gap; the high voltages (V9-V15 on QLC) barely differ between default and
optimal, so the reduction there is small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.exp.methods import MethodErrorData, collect_method_errors

_METHODS = ("default", "inferred", "calibrated", "optimal")


@dataclass
class ErrorComparisonResult:
    kind: str
    wordlines: np.ndarray
    per_voltage_mean: Dict[str, np.ndarray]  # method -> (n_voltages,)
    per_wordline: Dict[str, np.ndarray]  # method -> (n_wl, n_voltages)

    @property
    def n_voltages(self) -> int:
        return len(self.per_voltage_mean["default"])

    def total_errors(self, method: str) -> float:
        return float(self.per_voltage_mean[method].sum())

    def reduction_vs_default(self, method: str) -> float:
        return 1.0 - self.total_errors(method) / max(self.total_errors("default"), 1e-9)

    def rows(self) -> list:
        out = []
        for v in range(1, self.n_voltages + 1):
            out.append(
                tuple(
                    [f"V{v}"]
                    + [round(float(self.per_voltage_mean[m][v - 1]), 1) for m in _METHODS]
                )
            )
        out.append(
            tuple(["total"] + [round(self.total_errors(m), 1) for m in _METHODS])
        )
        return out


def run_error_comparison(
    kind: str,
    wordline_step: int = 4,
    data: "MethodErrorData | None" = None,
) -> ErrorComparisonResult:
    """Shared driver behind Figures 16 (TLC) and 17 (QLC)."""
    if data is None:
        data = collect_method_errors(kind, wordline_step=wordline_step)
    return ErrorComparisonResult(
        kind=kind,
        wordlines=data.wordlines,
        per_voltage_mean={m: data.mean_errors(m) for m in _METHODS},
        per_wordline={m: data.errors[m] for m in _METHODS},
    )


def run_fig16(wordline_step: int = 4) -> ErrorComparisonResult:
    """Figure 16: the TLC chip."""
    return run_error_comparison("tlc", wordline_step=wordline_step)


def run_fig17(wordline_step: int = 4) -> ErrorComparisonResult:
    """Figure 17: the QLC chip."""
    return run_error_comparison("qlc", wordline_step=wordline_step)
