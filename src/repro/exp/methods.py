"""Shared collector for the method-comparison experiments (Figs 15-18).

For every wordline of the evaluated aged block, gather the dense offset
vector each method would read with — default, sentinel-inferred,
sentinel-calibrated (the controller's final voltages), per-block tracking,
and the true optimum — plus the per-voltage error counts at each.

Two error flavors are recorded:

* ``errors`` — bit errors attributed per voltage by an actual (noisy)
  full-state read: what Figures 16-18 plot.
* ``boundary_errors`` — noiseless adjacent-state misclassification counts:
  the quantity behind Figure 15's "successfully achieved the optimal read
  voltage" criterion (within 5% of the optimum's errors).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.controller import SentinelController
from repro.ecc.capability import CapabilityEcc
from repro.exp.common import default_ecc, eval_chip, trained_model
from repro.flash.optimal import errors_at_offsets, optimal_offsets
from repro.retry import TrackingPolicy

METHOD_ORDER = ("default", "inferred", "calibrated", "tracking", "optimal")


@dataclass
class MethodErrorData:
    kind: str
    wordlines: np.ndarray
    offsets: Dict[str, np.ndarray]  # method -> (n_wl, n_voltages)
    errors: Dict[str, np.ndarray]  # method -> (n_wl, n_voltages) noisy
    boundary_errors: Dict[str, np.ndarray]  # method -> (n_wl, n_voltages)

    @property
    def n_voltages(self) -> int:
        return self.errors["default"].shape[1]

    def mean_errors(self, method: str) -> np.ndarray:
        return self.errors[method].mean(axis=0)

    def success_rate(
        self,
        method: str,
        relative_tolerance: float = 0.05,
        absolute_slack: int = 3,
    ) -> np.ndarray:
        """Per-voltage fraction of wordlines achieving the optimum.

        Success means the method's boundary errors exceed the optimal ones
        by at most ``relative_tolerance`` (plus a small absolute slack that
        absorbs counting noise on nearly error-free boundaries).
        """
        got = self.boundary_errors[method]
        best = self.boundary_errors["optimal"]
        threshold = np.maximum(best * (1.0 + relative_tolerance), best + absolute_slack)
        return (got <= threshold).mean(axis=0)


def collect_method_errors(
    kind: str = "qlc",
    wordline_step: int = 4,
    include_tracking: bool = False,
    page: str = "MSB",
    max_wordlines: Optional[int] = None,
    strict_ecc_factor: float = 0.45,
) -> MethodErrorData:
    """Run all methods over the evaluated block and collect error counts.

    The "calibrated" method runs the sentinel controller against a *strict*
    ECC (capability scaled by ``strict_ecc_factor``), so the calibration loop
    engages whenever the inferred voltages are not essentially optimal —
    matching how the paper measures whether the optimum was *achieved*, not
    merely whether some ECC decoded.  The vendor-table fallback is disabled
    so the final voltages are genuinely the calibration's output.
    """
    chip = eval_chip(kind)
    spec = chip.spec
    model = trained_model(kind)
    ecc = default_ecc(kind)
    strict = CapabilityEcc(
        capability_rber=ecc.capability_rber * strict_ecc_factor,
        frame_bits=ecc.frame_bits,
    )
    controller = SentinelController(strict, model, fallback_table=False)
    tracking = TrackingPolicy(ecc, chip) if include_tracking else None

    indices = np.arange(0, spec.wordlines_per_block, wordline_step)
    if max_wordlines is not None:
        indices = indices[:max_wordlines]
    methods = [m for m in METHOD_ORDER if include_tracking or m != "tracking"]
    n_v = spec.n_voltages
    offsets = {m: np.zeros((len(indices), n_v)) for m in methods}
    errors = {m: np.zeros((len(indices), n_v), dtype=np.int64) for m in methods}
    boundary = {m: np.zeros((len(indices), n_v), dtype=np.int64) for m in methods}

    tracked = tracking.tracked_offsets(0) if tracking is not None else None

    for i, wl in enumerate(chip.iter_wordlines(0, indices)):
        per_wl: Dict[str, np.ndarray] = {}
        per_wl["default"] = np.zeros(n_v)
        per_wl["optimal"] = optimal_offsets(wl)
        readout = wl.sentinel_readout(0.0)
        per_wl["inferred"] = model.infer_offsets(
            readout.difference_rate, wl.stress.temperature_c
        )
        outcome = controller.read(wl, page)
        # calibration output counts only when it converged; on a strict-ECC
        # wipeout the controller would fall back to the vendor table, so the
        # honest "calibrated" voltages are the inferred ones
        if outcome.success and len(outcome.final_offsets) == n_v:
            per_wl["calibrated"] = outcome.final_offsets
        else:
            per_wl["calibrated"] = per_wl["inferred"]
        if tracked is not None:
            per_wl["tracking"] = tracked
        for method in methods:
            off = per_wl[method]
            offsets[method][i] = off
            errors[method][i] = wl.per_voltage_errors(off)
            boundary[method][i] = [
                errors_at_offsets(wl, v, [off[v - 1]])[0]
                for v in range(1, n_v + 1)
            ]
    return MethodErrorData(
        kind=kind,
        wordlines=indices,
        offsets=offsets,
        errors=errors,
        boundary_errors=boundary,
    )
