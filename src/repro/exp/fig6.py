"""Figure 6: optimal read-voltage offsets of every layer within a block.

QLC, 3000 P/E cycles, one-year retention.  Reproduces the observations that
drive the design: every read voltage's optimum varies strongly across layers
(so per-block or per-layer tracking is coarse), and the low read voltages
need the largest corrections (V1 is excluded — the wide erased state makes
it an outlier, as the paper notes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exp.common import ONE_YEAR_H, eval_chip
from repro.flash.mechanisms import StressState
from repro.flash.optimal import optimal_offsets


@dataclass
class Fig6Result:
    kind: str
    layers: np.ndarray
    voltages: Sequence[int]
    offsets: np.ndarray  # (n_layers, n_voltages) mean optimum per layer

    def voltage_column(self, vindex: int) -> np.ndarray:
        return self.offsets[:, list(self.voltages).index(vindex)]

    def spread(self, vindex: int) -> float:
        """Max-min spread of a voltage's optimum across layers."""
        col = self.voltage_column(vindex)
        return float(col.max() - col.min())

    def rows(self) -> list:
        return [
            (
                f"V{v}",
                float(self.voltage_column(v).mean()),
                float(self.voltage_column(v).min()),
                float(self.voltage_column(v).max()),
                self.spread(v),
            )
            for v in self.voltages
        ]


def run_fig6(
    kind: str = "qlc",
    pe_cycles: int = 3000,
    layer_step: int = 1,
    wordlines_per_layer_sampled: int = 1,
) -> Fig6Result:
    """Mean optimal offset of V2..Vmax per layer."""
    chip = eval_chip(kind)
    spec = chip.spec
    chip.set_block_stress(
        0, StressState(pe_cycles=pe_cycles, retention_hours=ONE_YEAR_H)
    )
    voltages = tuple(range(2, spec.n_voltages + 1))
    layers = np.arange(0, spec.layers, layer_step)
    table = np.zeros((len(layers), len(voltages)))
    for li, layer in enumerate(layers):
        base = layer * spec.wordlines_per_layer
        rows = []
        indices = range(
            base,
            base + min(wordlines_per_layer_sampled, spec.wordlines_per_layer),
        )
        for wl in chip.iter_wordlines(0, indices):
            rows.append(optimal_offsets(wl, voltages=voltages)[np.array(voltages) - 1])
        table[li] = np.mean(rows, axis=0)
    return Fig6Result(kind=kind, layers=layers, voltages=voltages, offsets=table)
