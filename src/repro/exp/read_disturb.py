"""Read-disturb study (Section IV, experimental setup).

The paper measured that "read disturbance does not introduce reliability
degradation until one million read operations", which is why its evaluation
focuses on retention and P/E cycling.  This driver reproduces that check:
RBER as a function of the read count, at fixed moderate retention, showing
the flat region below ~1e6 reads and the onset beyond.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exp.common import eval_chip
from repro.flash.mechanisms import StressState


@dataclass
class ReadDisturbResult:
    kind: str
    read_counts: Sequence[int]
    rber: np.ndarray  # mean MSB RBER per read count

    def degradation(self, reads: int) -> float:
        """RBER at ``reads`` relative to the undisturbed baseline."""
        idx = list(self.read_counts).index(reads)
        return float(self.rber[idx] / max(self.rber[0], 1e-12))

    def flat_below_one_million(self, tolerance: float = 0.10) -> bool:
        for reads in self.read_counts:
            if 0 < reads <= 1_000_000:
                if self.degradation(reads) > 1.0 + tolerance:
                    return False
        return True

    def rows(self) -> list:
        return [
            (f"{reads:.0e}" if reads else "0",
             f"{self.rber[i]:.3e}",
             f"{self.degradation(reads):.2f}x")
            for i, reads in enumerate(self.read_counts)
        ]


def run_read_disturb(
    kind: str = "tlc",
    read_counts: Sequence[int] = (0, 10_000, 100_000, 1_000_000, 5_000_000,
                                  20_000_000),
    pe_cycles: int = 3000,
    retention_hours: float = 720.0,
    wordline_step: int = 16,
) -> ReadDisturbResult:
    """Mean MSB RBER versus the number of reads since programming."""
    chip = eval_chip(kind)
    spec = chip.spec
    indices = range(0, spec.wordlines_per_block, wordline_step)
    rber = np.zeros(len(read_counts))
    for i, reads in enumerate(read_counts):
        chip.set_block_stress(
            0,
            StressState(
                pe_cycles=pe_cycles,
                retention_hours=retention_hours,
                read_count=reads,
            ),
        )
        samples = [wl.page_rber("MSB") for wl in chip.iter_wordlines(0, indices)]
        rber[i] = float(np.mean(samples))
    return ReadDisturbResult(kind=kind, read_counts=tuple(read_counts), rber=rber)
