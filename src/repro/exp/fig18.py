"""Figure 18: comparison against the tracking method of prior work.

Tracking (Cai et al., HPCA'15) measures the optimum of one wordline per
block and applies it everywhere.  On 3D flash the wordline-to-wordline
variation defeats it: some wordlines improve, others get *more* errors than
at the default voltages.  The paper shows four QLC voltages (V4, V8, V11,
V15) with default / calibrated / tracking / optimal error counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.exp.methods import MethodErrorData, collect_method_errors

_METHODS = ("default", "calibrated", "tracking", "optimal")


@dataclass
class Fig18Result:
    kind: str
    voltages: Sequence[int]
    per_wordline: Dict[str, np.ndarray]  # method -> (n_wl, len(voltages))
    per_voltage_mean: Dict[str, np.ndarray]

    def tracking_worse_than_default_fraction(self) -> float:
        """Fraction of (wordline, voltage) points where tracking *hurts* —
        the paper's key criticism of per-block tracking on 3D flash."""
        worse = self.per_wordline["tracking"] > self.per_wordline["default"]
        return float(worse.mean())

    def sentinel_beats_tracking_fraction(self) -> float:
        better = (
            self.per_wordline["calibrated"] <= self.per_wordline["tracking"]
        )
        return float(better.mean())

    def rows(self) -> list:
        out = []
        for i, v in enumerate(self.voltages):
            out.append(
                tuple(
                    [f"V{v}"]
                    + [
                        round(float(self.per_voltage_mean[m][i]), 1)
                        for m in _METHODS
                    ]
                )
            )
        out.append(
            (
                "tracking hurts (vs default)",
                f"{self.tracking_worse_than_default_fraction():.1%}",
                "sentinel<=tracking",
                f"{self.sentinel_beats_tracking_fraction():.1%}",
            )
        )
        return out


def run_fig18(
    kind: str = "qlc",
    voltages: Sequence[int] = (4, 8, 11, 15),
    wordline_step: int = 4,
    data: "MethodErrorData | None" = None,
) -> Fig18Result:
    """Four-method comparison on the selected voltages."""
    if data is None:
        data = collect_method_errors(
            kind, wordline_step=wordline_step, include_tracking=True
        )
    cols = np.asarray(voltages) - 1
    per_wordline = {m: data.errors[m][:, cols] for m in _METHODS}
    return Fig18Result(
        kind=kind,
        voltages=tuple(voltages),
        per_wordline=per_wordline,
        per_voltage_mean={m: per_wordline[m].mean(axis=0) for m in _METHODS},
    )
