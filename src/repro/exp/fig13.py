"""Figure 13: read retries per wordline — current flash vs sentinel.

One TLC block, 5000 P/E cycles, one-year retention (the paper's most-aged
configuration).  Current flash walks its vendor retry table and needs many
retries on nearly every wordline; the sentinel controller infers the optimal
voltages from the first failed read and almost always lands in one retry.
The paper reports 6.6 -> 1.2 average retries (an 82% reduction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.controller import SentinelController
from repro.exp.common import default_ecc, eval_chip, trained_model
from repro.retry import CurrentFlashPolicy


@dataclass
class Fig13Result:
    kind: str
    page: str
    wordlines: np.ndarray
    current_retries: np.ndarray
    sentinel_retries: np.ndarray
    current_failures: int
    sentinel_failures: int

    @property
    def current_mean(self) -> float:
        return float(self.current_retries.mean())

    @property
    def sentinel_mean(self) -> float:
        return float(self.sentinel_retries.mean())

    @property
    def reduction(self) -> float:
        return 1.0 - self.sentinel_mean / max(self.current_mean, 1e-9)

    def fraction_within(self, retries: int) -> float:
        """Fraction of wordlines the sentinel serves within N retries."""
        return float(np.mean(self.sentinel_retries <= retries))

    def rows(self) -> list:
        return [
            ("current flash mean retries", round(self.current_mean, 2)),
            ("sentinel mean retries", round(self.sentinel_mean, 2)),
            ("reduction", f"{self.reduction:.0%}"),
            ("sentinel within 2 retries", f"{self.fraction_within(2):.1%}"),
        ]


def run_fig13(
    kind: str = "tlc",
    page: str = "MSB",
    n_wordlines: int = 240,
    wordline_step: int = 1,
) -> Fig13Result:
    """Per-wordline retry counts for both policies on the aged block."""
    chip = eval_chip(kind)
    spec = chip.spec
    ecc = default_ecc(kind)
    sentinel = SentinelController(ecc, trained_model(kind))
    current = CurrentFlashPolicy(ecc, spec)
    limit = min(n_wordlines * wordline_step, spec.wordlines_per_block)
    indices = np.arange(0, limit, wordline_step)
    cur = np.zeros(len(indices), dtype=np.int64)
    sen = np.zeros(len(indices), dtype=np.int64)
    cur_fail = sen_fail = 0
    for i, wl in enumerate(chip.iter_wordlines(0, indices)):
        o1 = current.read(wl, page)
        o2 = sentinel.read(wl, page)
        cur[i], sen[i] = o1.retries, o2.retries
        cur_fail += not o1.success
        sen_fail += not o2.success
    return Fig13Result(
        kind=kind,
        page=page,
        wordlines=indices,
        current_retries=cur,
        sentinel_retries=sen,
        current_failures=cur_fail,
        sentinel_failures=sen_fail,
    )
