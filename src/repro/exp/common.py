"""Shared experiment infrastructure: standard specs, seeds, stresses, models.

The paper's procedure separates *training* chips (characterized at the
factory, their fits burned into the batch) from *evaluated* chips; we mirror
that with two chip seeds.  The fitted :class:`SentinelModel` per chip kind is
cached per process because every figure reuses it.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from repro.core.characterization import CharacterizationResult, characterize_chip
from repro.core.models import SentinelModel
from repro.ecc.capability import CapabilityEcc
from repro.flash.chip import FlashChip
from repro.flash.mechanisms import StressState
from repro.flash.spec import FlashSpec, QLC_SPEC, TLC_SPEC

#: Chip seed used for factory characterization (the "training die").
TRAIN_SEED = 100
#: Chip seed of the die every experiment evaluates.
EVAL_SEED = 1

#: Default simulation scale: cells per wordline / wordlines per layer.
SIM_CELLS = 65536
SIM_WL_PER_LAYER = 4

HIGH_TEMP_C = 80.0
ONE_YEAR_H = 8760.0


def sim_spec(
    kind: str,
    cells_per_wordline: int = SIM_CELLS,
    wordlines_per_layer: int = SIM_WL_PER_LAYER,
) -> FlashSpec:
    """A scaled spec for simulation (``kind`` is ``"tlc"`` or ``"qlc"``)."""
    base = {"tlc": TLC_SPEC, "qlc": QLC_SPEC}.get(kind.lower())
    if base is None:
        raise ValueError(f"unknown chip kind {kind!r}; use 'tlc' or 'qlc'")
    return base.scaled(
        cells_per_wordline=cells_per_wordline,
        wordlines_per_layer=wordlines_per_layer,
    )


def eval_stress(kind: str) -> StressState:
    """The paper's evaluation conditions (Section IV): one-year retention,
    5000 P/E for TLC and 1000 P/E for QLC."""
    pe = 5000 if kind.lower() == "tlc" else 1000
    return StressState(pe_cycles=pe, retention_hours=ONE_YEAR_H)


def training_stresses(kind: str) -> Tuple[StressState, ...]:
    """Stress sweep used for factory characterization."""
    if kind.lower() == "tlc":
        pes = (1000, 3000, 5000)
    else:
        pes = (500, 1000, 3000)
    room = tuple(
        StressState(pe_cycles=pe, retention_hours=hours)
        for pe in pes
        for hours in (720.0, ONE_YEAR_H)
    )
    hot = tuple(
        StressState(pe_cycles=pe, retention_hours=hours, temperature_c=HIGH_TEMP_C)
        for pe in pes
        for hours in (1.0, 24.0)
    )
    return room + hot


def eval_chip(kind: str, sentinel_ratio: float = 0.002, **spec_kw) -> FlashChip:
    chip = FlashChip(sim_spec(kind, **spec_kw), seed=EVAL_SEED,
                     sentinel_ratio=sentinel_ratio)
    chip.set_block_stress(0, eval_stress(kind))
    return chip


def default_ecc(kind: str) -> CapabilityEcc:
    return CapabilityEcc.for_spec(sim_spec(kind))


@lru_cache(maxsize=None)
def characterization(
    kind: str,
    sentinel_ratio: float = 0.002,
    wordline_step: int = 4,
) -> CharacterizationResult:
    """Factory characterization of the training die (cached per process)."""
    spec = sim_spec(kind)
    chip = FlashChip(spec, seed=TRAIN_SEED, sentinel_ratio=sentinel_ratio)
    return characterize_chip(
        chip,
        blocks=(0,),
        stresses=training_stresses(kind),
        wordlines=range(0, spec.wordlines_per_block, wordline_step),
    )


def trained_model(kind: str, sentinel_ratio: float = 0.002) -> SentinelModel:
    """The fitted sentinel model of a chip kind (cached).

    Calls ``characterization`` with the same argument spelling the figure
    drivers use, so the (argument-sensitive) lru_cache is shared instead of
    fitting twice.
    """
    if sentinel_ratio == 0.002:
        return characterization(kind).model
    return characterization(kind, sentinel_ratio).model
