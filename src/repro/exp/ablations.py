"""Ablations of the design choices called out in DESIGN.md section 5.

Each function sweeps one knob of the sentinel design and reports the effect
on the quantity it trades against:

* sentinel ratio        -> mean retries (space vs accuracy, Table I context)
* sentinel voltage      -> inference accuracy (why V8/V4 are good picks)
* polynomial degree     -> fit residuals (why degree 5)
* calibration delta     -> mean retries after inference failure
* cross-voltage model   -> success with vs without the correlation step
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.calibration import CalibrationConfig
from repro.core.characterization import characterize_chip
from repro.core.controller import SentinelController
from repro.core.fitting import fit_difference_polynomial
from repro.exp.common import (
    EVAL_SEED,
    TRAIN_SEED,
    characterization,
    default_ecc,
    eval_chip,
    eval_stress,
    sim_spec,
    trained_model,
    training_stresses,
)
from repro.flash.chip import FlashChip
from repro.flash.optimal import optimal_offset


@dataclass
class SweepResult:
    """Generic one-knob sweep outcome."""

    name: str
    knob_values: Tuple
    metric_name: str
    metrics: Dict

    def rows(self) -> List[tuple]:
        return [(v, round(float(self.metrics[v]), 3)) for v in self.knob_values]


def _mean_retries(chip, controller, wordline_step: int, page: str = "MSB") -> float:
    spec = chip.spec
    retries = []
    for wl in chip.iter_wordlines(
        0, range(0, spec.wordlines_per_block, wordline_step)
    ):
        retries.append(controller.read(wl, page).retries)
    return float(np.mean(retries))


def ablate_sentinel_ratio(
    kind: str = "tlc",
    ratios: Sequence[float] = (0.0005, 0.002, 0.006),
    wordline_step: int = 8,
) -> SweepResult:
    """Mean retries as a function of the sentinel reservation."""
    spec = sim_spec(kind)
    metrics = {}
    for ratio in ratios:
        train = FlashChip(spec, seed=TRAIN_SEED, sentinel_ratio=ratio)
        model = characterize_chip(
            train,
            blocks=(0,),
            stresses=training_stresses(kind),
            wordlines=range(0, spec.wordlines_per_block, wordline_step),
        ).model
        chip = FlashChip(spec, seed=EVAL_SEED, sentinel_ratio=ratio)
        chip.set_block_stress(0, eval_stress(kind))
        controller = SentinelController(default_ecc(kind), model)
        metrics[ratio] = _mean_retries(chip, controller, wordline_step)
    return SweepResult(
        name="sentinel-ratio",
        knob_values=tuple(ratios),
        metric_name="mean retries",
        metrics=metrics,
    )


def ablate_sentinel_voltage(
    kind: str = "qlc",
    voltages: Sequence[int] = (4, 8, 12),
    wordline_step: int = 8,
) -> SweepResult:
    """Inference accuracy when a different voltage plays sentinel.

    Rebuilds chips whose sentinel cells guard the alternative voltage and
    measures mean |predicted - real| for it.  Mid-range voltages work best:
    their boundary shifts correlate well with everything else.
    """
    from dataclasses import replace

    metrics = {}
    for v in voltages:
        spec = replace(sim_spec(kind), sentinel_voltage=v)
        train = FlashChip(spec, seed=TRAIN_SEED)
        model = characterize_chip(
            train,
            blocks=(0,),
            stresses=training_stresses(kind),
            wordlines=range(0, spec.wordlines_per_block, wordline_step),
        ).model
        chip = FlashChip(spec, seed=EVAL_SEED)
        chip.set_block_stress(0, eval_stress(kind))
        diffs = []
        for wl in chip.iter_wordlines(
            0, range(0, spec.wordlines_per_block, wordline_step)
        ):
            real = optimal_offset(wl, v)
            predicted = model.infer_sentinel_offset(
                wl.sentinel_readout(0.0).difference_rate
            )
            diffs.append(abs(predicted - real))
        metrics[v] = float(np.mean(diffs))
    return SweepResult(
        name="sentinel-voltage",
        knob_values=tuple(voltages),
        metric_name="mean |predicted-real| (steps)",
        metrics=metrics,
    )


def ablate_polynomial_degree(
    kind: str = "qlc", degrees: Sequence[int] = (1, 3, 5, 7)
) -> SweepResult:
    """Training residual of the d -> offset fit per polynomial degree."""
    data = characterization(kind)
    metrics = {}
    target = data.sentinel_optima
    for degree in degrees:
        poly = fit_difference_polynomial(data.d_rates, target, degree=degree)
        residual = poly(data.d_rates) - target
        metrics[degree] = float(np.abs(residual).mean())
    return SweepResult(
        name="poly-degree",
        knob_values=tuple(degrees),
        metric_name="mean |residual| (steps)",
        metrics=metrics,
    )


def ablate_calibration_delta(
    kind: str = "tlc",
    deltas: Sequence[float] = (2.0, 5.0, 10.0),
    wordline_step: int = 8,
) -> SweepResult:
    """Mean retries as a function of the calibration step size."""
    metrics = {}
    for delta in deltas:
        chip = eval_chip(kind)
        controller = SentinelController(
            default_ecc(kind),
            trained_model(kind),
            calibration=CalibrationConfig(delta_steps=delta),
        )
        metrics[delta] = _mean_retries(chip, controller, wordline_step)
    return SweepResult(
        name="calibration-delta",
        knob_values=tuple(deltas),
        metric_name="mean retries",
        metrics=metrics,
    )


def ablate_correlation(
    kind: str = "qlc", wordline_step: int = 8
) -> SweepResult:
    """Retries with and without the cross-voltage correlation step.

    Without the correlation, only the sentinel voltage is tuned and every
    other voltage stays at its default — quantifying how much of the win
    comes from propagating one inferred offset to all voltages.
    """
    chip = eval_chip(kind)
    ecc = default_ecc(kind)
    model = trained_model(kind)
    with_corr = SentinelController(ecc, model)
    metrics = {"with-correlation": _mean_retries(chip, with_corr, wordline_step)}

    # a crippled model: identity for the sentinel voltage, zeros elsewhere
    import copy

    crippled = copy.deepcopy(model)
    for table in crippled.correlations:
        table.slopes[:] = 0.0
        table.intercepts[:] = 0.0
        table.slopes[model.sentinel_voltage - 1] = 1.0
    chip2 = eval_chip(kind)
    without = SentinelController(ecc, crippled)
    metrics["sentinel-only"] = _mean_retries(chip2, without, wordline_step)
    return SweepResult(
        name="cross-voltage-correlation",
        knob_values=("with-correlation", "sentinel-only"),
        metric_name="mean retries",
        metrics=metrics,
    )


def ablate_read_noise(
    kind: str = "qlc",
    noise_sigmas: Sequence[float] = (1.0, 3.5, 8.0),
    wordline_step: int = 16,
) -> SweepResult:
    """Inference accuracy versus the sensing-comparator noise.

    The error difference is counted from noisy reads, so a noisier sense
    amp blurs the d -> offset relationship on both the training and the
    evaluation side.  Chips are rebuilt per noise level (train + eval).
    """
    from dataclasses import replace as dc_replace

    metrics = {}
    for sigma in noise_sigmas:
        spec = dc_replace(sim_spec(kind), read_noise_sigma=sigma)
        train = FlashChip(spec, seed=TRAIN_SEED)
        model = characterize_chip(
            train,
            blocks=(0,),
            stresses=training_stresses(kind),
            wordlines=range(0, spec.wordlines_per_block, wordline_step),
        ).model
        chip = FlashChip(spec, seed=EVAL_SEED)
        chip.set_block_stress(0, eval_stress(kind))
        diffs = []
        for wl in chip.iter_wordlines(
            0, range(0, spec.wordlines_per_block, wordline_step)
        ):
            real = optimal_offset(wl, spec.sentinel_voltage)
            predicted = model.infer_sentinel_offset(
                wl.sentinel_readout(0.0).difference_rate
            )
            diffs.append(abs(predicted - real))
        metrics[sigma] = float(np.mean(diffs))
    return SweepResult(
        name="read-noise",
        knob_values=tuple(noise_sigmas),
        metric_name="mean |predicted-real| (steps)",
        metrics=metrics,
    )


def ablate_training_budget(
    kind: str = "qlc",
    wordline_steps: Sequence[int] = (64, 16, 4),
    eval_step: int = 16,
) -> SweepResult:
    """Inference accuracy versus factory characterization effort.

    Sweeping fewer training wordlines is cheaper factory time; the fit
    quality saturates once a few hundred (d, V_opt) pairs are in hand — the
    paper's "hundreds of pairs" remark.
    """
    spec = sim_spec(kind)
    metrics = {}
    for step in wordline_steps:
        train = FlashChip(spec, seed=TRAIN_SEED)
        result = characterize_chip(
            train,
            blocks=(0,),
            stresses=training_stresses(kind),
            wordlines=range(0, spec.wordlines_per_block, step),
        )
        chip = FlashChip(spec, seed=EVAL_SEED)
        chip.set_block_stress(0, eval_stress(kind))
        diffs = []
        for wl in chip.iter_wordlines(
            0, range(0, spec.wordlines_per_block, eval_step)
        ):
            real = optimal_offset(wl, spec.sentinel_voltage)
            predicted = result.model.infer_sentinel_offset(
                wl.sentinel_readout(0.0).difference_rate
            )
            diffs.append(abs(predicted - real))
        # key by the number of training samples, the quantity that matters
        metrics[len(result.d_rates)] = float(np.mean(diffs))
    return SweepResult(
        name="training-budget",
        knob_values=tuple(sorted(metrics)),
        metric_name="mean |predicted-real| (steps)",
        metrics=metrics,
    )
