"""Table I: prediction accuracy versus the sentinel-cell ratio.

For each reserving ratio, fit the error-difference polynomial on the
training die *at that ratio* (fewer sentinels = noisier training data, just
like on silicon), then measure |predicted - real| of the sentinel-voltage
optimum on the evaluated die.  The paper's trade-off to reproduce: accuracy
improves with more sentinels, with clearly diminishing returns beyond 0.2%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.characterization import characterize_chip
from repro.exp.common import (
    EVAL_SEED,
    TRAIN_SEED,
    eval_stress,
    sim_spec,
    training_stresses,
)
from repro.flash.chip import FlashChip
from repro.flash.optimal import optimal_offset


@dataclass
class Table1Result:
    kind: str
    ratios: Tuple[float, ...]
    mean_abs: Dict[float, float]
    std: Dict[float, float]
    sentinel_counts: Dict[float, int]

    def rows(self) -> list:
        return [
            (
                f"{ratio:.2%}",
                self.sentinel_counts[ratio],
                round(self.mean_abs[ratio], 2),
                round(self.std[ratio], 2),
            )
            for ratio in self.ratios
        ]

    def is_monotone_improving(self, slack: float = 0.10) -> bool:
        """Mean error should not grow as the ratio grows (within noise)."""
        means = [self.mean_abs[r] for r in self.ratios]
        return all(
            later <= earlier * (1.0 + slack)
            for earlier, later in zip(means, means[1:])
        )


def run_table1(
    kind: str = "qlc",
    ratios: Sequence[float] = (0.0002, 0.001, 0.002, 0.004, 0.006),
    train_wordline_step: int = 8,
    eval_wordline_step: int = 4,
) -> Table1Result:
    """The Table I sweep for one chip kind."""
    spec = sim_spec(kind)
    mean_abs: Dict[float, float] = {}
    std: Dict[float, float] = {}
    counts: Dict[float, int] = {}
    for ratio in ratios:
        train_chip = FlashChip(spec, seed=TRAIN_SEED, sentinel_ratio=ratio)
        model = characterize_chip(
            train_chip,
            blocks=(0,),
            stresses=training_stresses(kind),
            wordlines=range(0, spec.wordlines_per_block, train_wordline_step),
        ).model
        chip = FlashChip(spec, seed=EVAL_SEED, sentinel_ratio=ratio)
        chip.set_block_stress(0, eval_stress(kind))
        diffs = []
        for wl in chip.iter_wordlines(
            0, range(0, spec.wordlines_per_block, eval_wordline_step)
        ):
            real = optimal_offset(wl, spec.sentinel_voltage)
            readout = wl.sentinel_readout(0.0)
            predicted = model.infer_sentinel_offset(readout.difference_rate)
            diffs.append(abs(predicted - real))
        arr = np.asarray(diffs)
        mean_abs[ratio] = float(arr.mean())
        std[ratio] = float(arr.std())
        counts[ratio] = spec.sentinel_cells(ratio)
    return Table1Result(
        kind=kind,
        ratios=tuple(ratios),
        mean_abs=mean_abs,
        std=std,
        sentinel_counts=counts,
    )
