"""Figure 12: state-change counts around the optimum (calibration rationale).

For every wordline, count the cells whose single-voltage readout changes
when the sentinel voltage moves from its default position to ``optimal +
delta``, normalized by the count at ``delta = 0``.  The paper's observation,
which makes the calibration's Case 1 / Case 2 test work: stopping *short* of
the optimum (positive delta, toward the default) changes fewer cells than a
successful prediction, overshooting (negative delta) changes more.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exp.common import eval_chip
from repro.flash.optimal import optimal_offset


@dataclass
class Fig12Result:
    kind: str
    deltas: Sequence[int]
    normalized_counts: np.ndarray  # (n_deltas,) mean over wordlines
    per_wordline: np.ndarray  # (n_wordlines, n_deltas)

    def rows(self) -> list:
        return [
            (delta, float(self.normalized_counts[i]))
            for i, delta in enumerate(self.deltas)
        ]

    def is_monotone_decreasing(self) -> bool:
        """Overshoot > exact > undershoot, the Figure 12 ordering."""
        return bool(np.all(np.diff(self.normalized_counts) <= 0))


def run_fig12(
    kind: str = "qlc",
    deltas: Sequence[int] = (-6, -3, 0, 3, 6),
    wordline_step: int = 8,
) -> Fig12Result:
    """Normalized state-change counts at offsets around each optimum."""
    chip = eval_chip(kind)
    spec = chip.spec
    indices = range(0, spec.wordlines_per_block, wordline_step)
    rows = []
    for wl in chip.iter_wordlines(0, indices):
        opt = optimal_offset(wl, spec.sentinel_voltage)
        pos_default = spec.read_voltage(spec.sentinel_voltage, 0.0)
        base_changes = None
        row = np.zeros(len(deltas))
        for i, delta in enumerate(deltas):
            pos = spec.read_voltage(spec.sentinel_voltage, opt + delta)
            nca, _ = wl.state_change_counts(pos_default, pos)
            row[i] = nca
        zero_index = list(deltas).index(0)
        base_changes = max(row[zero_index], 1.0)
        rows.append(row / base_changes)
    per_wordline = np.asarray(rows)
    return Fig12Result(
        kind=kind,
        deltas=tuple(deltas),
        normalized_counts=per_wordline.mean(axis=0),
        per_wordline=per_wordline,
    )
