"""Figure 2: bit errors versus read-voltage offset (the motivation figure).

The paper opens with the V-shaped relationship between a read voltage's
offset and the number of bit errors it introduces: errors are minimized at
one optimal position and grow on both sides.  Everything else in the paper
is about finding that minimum quickly.  This driver produces the curve for
any boundary of any wordline, plus summary statistics (optimal position,
error count at default/optimal, curve asymmetry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.exp.common import eval_chip
from repro.flash.optimal import errors_at_offsets, optimal_offset


@dataclass
class Fig2Result:
    kind: str
    vindex: int
    offsets: np.ndarray
    errors: np.ndarray  # mean over sampled wordlines
    optimal: float  # mean optimal offset
    at_default: float
    at_optimal: float

    @property
    def reduction(self) -> float:
        return self.at_default / max(self.at_optimal, 1e-9)

    def is_v_shaped(self) -> bool:
        """Errors decrease toward the minimum and increase past it."""
        i_min = int(np.argmin(self.errors))
        left = self.errors[: i_min + 1]
        right = self.errors[i_min:]
        # allow small counting wiggles on the flanks
        return (
            self.errors[0] > self.errors[i_min] * 1.5
            and self.errors[-1] > self.errors[i_min] * 1.5
            and left[0] >= left.min()
            and right[-1] >= right.min()
        )

    def rows(self) -> list:
        return [
            ("mean optimal offset", round(self.optimal, 1)),
            ("errors at default", round(self.at_default, 1)),
            ("errors at optimal", round(self.at_optimal, 1)),
            ("reduction", f"{self.reduction:.1f}x"),
        ]


def run_fig2(
    kind: str = "tlc",
    vindex: int = 4,
    wordlines: Sequence[int] = (0, 16, 32, 48),
    span: int = 120,
    step: int = 2,
) -> Fig2Result:
    """Average error-vs-offset curve of one boundary over a few wordlines."""
    chip = eval_chip(kind)
    offsets = np.arange(-span, span // 3 + 1, step)
    curves = []
    optima = []
    for wl in chip.iter_wordlines(0, wordlines):
        curves.append(errors_at_offsets(wl, vindex, offsets))
        optima.append(optimal_offset(wl, vindex))
    errors = np.mean(curves, axis=0)
    zero_index = int(np.argmin(np.abs(offsets)))
    return Fig2Result(
        kind=kind,
        vindex=vindex,
        offsets=offsets,
        errors=errors,
        optimal=float(np.mean(optima)),
        at_default=float(errors[zero_index]),
        at_optimal=float(errors.min()),
    )
