"""Figure 14: system-level read-latency reduction on eight MSR workloads.

Chip-level retry behaviour (measured per page type on the aged block, for
both policies) feeds the trace-driven SSD simulator; each workload is
replayed against a current-flash SSD and a sentinel SSD, and the figure
reports the mean read-latency reduction per trace.  The paper measures 74%
on average with SSDSim; see EXPERIMENTS.md for our measured values and the
configuration notes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.controller import SentinelController
from repro.exp.common import default_ecc, eval_chip, trained_model
from repro.retry import CurrentFlashPolicy
from repro.ssd import NandTiming, RetryProfile, Ssd, SsdConfig
from repro.ssd.metrics import SimulationReport, read_latency_reduction
from repro.traces.synthetic import MSR_WORKLOADS, generate_workload
from repro.traces.trace import Trace


@dataclass
class Fig14Result:
    kind: str
    reductions: Dict[str, float]  # workload -> fractional reduction
    reports: Dict[str, Dict[str, SimulationReport]]
    profile_retries: Dict[str, float]  # policy -> mean retries per read

    @property
    def average_reduction(self) -> float:
        return float(np.mean(list(self.reductions.values())))

    def rows(self) -> list:
        out = [
            (name, f"{red:.1%}") for name, red in sorted(self.reductions.items())
        ]
        out.append(("average", f"{self.average_reduction:.1%}"))
        return out


def measure_profiles(
    kind: str, wordline_step: int = 8, uniform_page_retries: bool = False
) -> Dict[str, RetryProfile]:
    """Chip-level retry profiles of both policies on the aged block.

    With ``uniform_page_retries`` the MSB page's retry distribution is
    applied to *every* page type — the modeling assumption of SSDSim-style
    studies (the paper's Figure 14 inputs come from the per-wordline
    Figure 13 measurement).  Measured effect here: small — the reduction is
    dominated by the retry *ratio*, which is similar across page types; the
    knob exists to quantify exactly that (see EXPERIMENTS.md).
    """
    chip = eval_chip(kind)
    spec = chip.spec
    ecc = default_ecc(kind)
    policies = [
        CurrentFlashPolicy(ecc, spec),
        SentinelController(ecc, trained_model(kind)),
    ]
    wordlines = range(0, spec.wordlines_per_block, wordline_step)
    profiles = {
        policy.name: RetryProfile.measure(chip, policy, wordlines=wordlines)
        for policy in policies
    }
    if uniform_page_retries:
        msb = spec.pages_per_wordline - 1
        for profile in profiles.values():
            msb_samples = profile.samples[msb]
            profile.samples = {p: msb_samples for p in profile.samples}
    return profiles


def run_fig14(
    kind: str = "tlc",
    workloads: Optional[Sequence[str]] = None,
    n_requests: int = 6000,
    rate_scale: float = 20.0,
    blocks_per_die: int = 32,
    seed: int = 7,
    traces: Optional[Dict[str, Trace]] = None,
    uniform_page_retries: bool = False,
) -> Fig14Result:
    """Replay the workloads against both policies' SSDs.

    Pass ``traces`` to use real MSR CSVs (via :mod:`repro.traces.msr`)
    instead of the synthetic stand-ins.  ``uniform_page_retries`` switches
    to the SSDSim-style retry model (see :func:`measure_profiles`).
    """
    profiles = measure_profiles(kind, uniform_page_retries=uniform_page_retries)
    spec = eval_chip(kind).spec
    timing = NandTiming()
    config = SsdConfig.for_spec(spec, blocks_per_die=blocks_per_die)
    names = list(workloads) if workloads is not None else list(MSR_WORKLOADS)
    reductions: Dict[str, float] = {}
    reports: Dict[str, Dict[str, SimulationReport]] = {}
    for name in names:
        if traces is not None and name in traces:
            trace = traces[name]
        else:
            trace = generate_workload(
                MSR_WORKLOADS[name],
                n_requests=n_requests,
                seed=seed,
                rate_scale=rate_scale,
            )
        per_policy = {
            pname: Ssd(spec, config, timing, prof, seed=seed).run_trace(trace)
            for pname, prof in profiles.items()
        }
        reports[name] = per_policy
        reductions[name] = read_latency_reduction(
            per_policy["current-flash"], per_policy["sentinel"]
        )
    return Fig14Result(
        kind=kind,
        reductions=reductions,
        reports=reports,
        profile_retries={
            pname: prof.mean_retries() for pname, prof in profiles.items()
        },
    )
