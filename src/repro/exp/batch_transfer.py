"""Cross-chip model transfer (Section III-D's batch claim).

"During the manufacturing process, we can conduct evaluations on one or
several flash chips to collect data for the correlation. Then the
correlation can be written into all the chips of the same batch ... all the
flash chips of the same type have similar reliability characteristics, with
only marginal deviations due to process variation."

This driver fits the sentinel model on one training die and evaluates the
inference accuracy and retry behaviour on several *other* dies (different
chip seeds = different process realizations of the same batch), quantifying
the claimed marginal deviation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.controller import SentinelController
from repro.exp.common import default_ecc, eval_stress, sim_spec, trained_model
from repro.flash.chip import FlashChip
from repro.flash.optimal import optimal_offset


@dataclass
class BatchTransferResult:
    kind: str
    train_seed: int
    eval_seeds: Sequence[int]
    mean_abs_error: Dict[int, float]  # seed -> |predicted-real| mean
    mean_retries: Dict[int, float]  # seed -> controller mean retries

    def worst_error(self) -> float:
        return max(self.mean_abs_error.values())

    def error_spread(self) -> float:
        """Relative spread of accuracy across dies — the 'marginal
        deviation due to process variation'."""
        values = np.array(list(self.mean_abs_error.values()))
        return float((values.max() - values.min()) / max(values.mean(), 1e-9))

    def rows(self) -> list:
        return [
            (
                seed,
                round(self.mean_abs_error[seed], 2),
                round(self.mean_retries[seed], 2),
            )
            for seed in self.eval_seeds
        ]


def run_batch_transfer(
    kind: str = "qlc",
    eval_seeds: Sequence[int] = (1, 2, 3, 4),
    wordline_step: int = 8,
) -> BatchTransferResult:
    """Evaluate the training die's model on several sibling dies."""
    spec = sim_spec(kind)
    model = trained_model(kind)
    ecc = default_ecc(kind)
    errors: Dict[int, float] = {}
    retries: Dict[int, float] = {}
    for seed in eval_seeds:
        chip = FlashChip(spec, seed=seed)
        chip.set_block_stress(0, eval_stress(kind))
        controller = SentinelController(ecc, model)
        diffs = []
        counts = []
        for wl in chip.iter_wordlines(
            0, range(0, spec.wordlines_per_block, wordline_step)
        ):
            real = optimal_offset(wl, spec.sentinel_voltage)
            predicted = model.infer_sentinel_offset(
                wl.sentinel_readout().difference_rate
            )
            diffs.append(abs(predicted - real))
            counts.append(controller.read(wl, "MSB").retries)
        errors[seed] = float(np.mean(diffs))
        retries[seed] = float(np.mean(counts))
    from repro.exp.common import TRAIN_SEED

    return BatchTransferResult(
        kind=kind,
        train_seed=TRAIN_SEED,
        eval_seeds=tuple(eval_seeds),
        mean_abs_error=errors,
        mean_retries=retries,
    )
