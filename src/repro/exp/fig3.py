"""Figure 3: per-layer MSB RBER at default vs optimal read voltages.

The paper plots, for one block after one-year retention, the maximum MSB
RBER of each layer at the default read voltages (solid) and at the optimal
read voltages (dashed), for P/E counts 0/1000/3000/5000, on both TLC and
QLC.  The two observations to reproduce: optimal voltages cut RBER by up to
an order of magnitude, and they compress the layer-to-layer spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.exp.common import ONE_YEAR_H, eval_chip
from repro.flash.mechanisms import StressState
from repro.flash.optimal import optimal_offsets


@dataclass
class Fig3Result:
    kind: str
    pe_cycles: Tuple[int, ...]
    layers: np.ndarray
    default_rber: Dict[int, np.ndarray]  # pe -> per-layer max RBER, default
    optimal_rber: Dict[int, np.ndarray]  # pe -> per-layer max RBER, optimal

    def reduction_factor(self, pe: int) -> float:
        """Mean default/optimal RBER ratio at one P/E count."""
        return float(
            np.mean(self.default_rber[pe]) / np.mean(self.optimal_rber[pe])
        )

    def layer_spread(self, pe: int, which: str = "default") -> float:
        """Max/min per-layer RBER ratio (the variation the optimum removes)."""
        series = (self.default_rber if which == "default" else self.optimal_rber)[pe]
        floor = max(series.min(), 1e-9)
        return float(series.max() / floor)

    def rows(self) -> list:
        out = []
        for pe in self.pe_cycles:
            out.append(
                (
                    pe,
                    float(self.default_rber[pe].max()),
                    float(self.optimal_rber[pe].max()),
                    self.reduction_factor(pe),
                )
            )
        return out


def run_fig3(
    kind: str = "qlc",
    pe_cycles: Sequence[int] = (0, 1000, 3000, 5000),
    layer_step: int = 1,
    wordlines_per_layer_sampled: int = 2,
) -> Fig3Result:
    """Measure the per-layer MSB RBER curves.

    ``layer_step`` subsamples layers; ``wordlines_per_layer_sampled`` bounds
    the wordlines evaluated per layer (the paper reports the per-layer max).
    """
    chip = eval_chip(kind)
    spec = chip.spec
    layers = np.arange(0, spec.layers, layer_step)
    default_rber: Dict[int, np.ndarray] = {}
    optimal_rber: Dict[int, np.ndarray] = {}
    for pe in pe_cycles:
        chip.set_block_stress(
            0, StressState(pe_cycles=pe, retention_hours=ONE_YEAR_H)
        )
        dmax = np.zeros(len(layers))
        omax = np.zeros(len(layers))
        for li, layer in enumerate(layers):
            base = layer * spec.wordlines_per_layer
            indices = range(
                base, base + min(wordlines_per_layer_sampled, spec.wordlines_per_layer)
            )
            for wl in chip.iter_wordlines(0, indices):
                dmax[li] = max(dmax[li], wl.page_rber("MSB"))
                opt = optimal_offsets(wl)
                omax[li] = max(omax[li], wl.page_rber("MSB", opt))
        default_rber[pe] = dmax
        optimal_rber[pe] = omax
    return Fig3Result(
        kind=kind,
        pe_cycles=tuple(pe_cycles),
        layers=layers,
        default_rber=default_rber,
        optimal_rber=optimal_rber,
    )
