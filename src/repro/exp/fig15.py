"""Figure 15: per-voltage success rate after inference and calibration.

For each read voltage of the evaluated QLC block: the fraction of wordlines
whose inferred (and then calibrated) voltage introduces at most 5% more
errors than the true optimum.  The paper reports >=83% after inference and
>=94% after calibration on average.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exp.methods import MethodErrorData, collect_method_errors


@dataclass
class Fig15Result:
    kind: str
    after_inference: np.ndarray  # per-voltage success fraction
    after_calibration: np.ndarray

    @property
    def mean_inference(self) -> float:
        return float(self.after_inference.mean())

    @property
    def mean_calibration(self) -> float:
        return float(self.after_calibration.mean())

    def rows(self) -> list:
        out = [
            (
                f"V{v}",
                f"{self.after_inference[v - 1]:.1%}",
                f"{self.after_calibration[v - 1]:.1%}",
            )
            for v in range(1, len(self.after_inference) + 1)
        ]
        out.append(
            ("mean", f"{self.mean_inference:.1%}", f"{self.mean_calibration:.1%}")
        )
        return out


def run_fig15(
    kind: str = "qlc",
    wordline_step: int = 4,
    data: "MethodErrorData | None" = None,
) -> Fig15Result:
    """Success percentages per voltage (reuses a collected dataset if given)."""
    if data is None:
        data = collect_method_errors(kind, wordline_step=wordline_step)
    return Fig15Result(
        kind=kind,
        after_inference=data.success_rate("inferred"),
        after_calibration=data.success_rate("calibrated"),
    )
