"""Experiment drivers: one module per table/figure of the paper.

Every driver is a plain function returning a result dataclass with the same
rows/series the paper plots; the benchmark suite (``benchmarks/``) times the
drivers and prints those rows, and the examples reuse them.  Drivers are
parameterized so tests can run them small and benches can run them at paper
scale.

Index (see DESIGN.md section 4 for the full mapping):

========  ==========================================================
fig3      per-layer MSB RBER, default vs optimal voltages, by P/E
fig4      per-wordline page RBER, room vs high temperature (1 h)
fig5      per-wordline optimal offsets, room vs high temperature
fig6      per-layer optimal offsets of all read voltages
fig7      bit-error positions in a block + uniformity statistics
fig8      cross-voltage correlation of optimal offsets
fig10     error-difference polynomial fit + inference accuracy
fig12     normalized state-change counts around the optimum
table1    |predicted - real| sentinel offset vs sentinel ratio
fig13     read retries per wordline: current flash vs sentinel
fig14     trace-driven read-latency reduction (8 MSR workloads)
fig15     per-voltage success rate after inference / calibration
fig16/17  per-voltage error counts (TLC / QLC), four methods
fig18     adds the tracking baseline (four voltages)
fig19     LDPC decoding success rate, three sensings x three methods
ablations design-choice sweeps called out in DESIGN.md section 5
--------  ----------------------------------------------------------
fig2      the motivating error-vs-offset V-curve (Section II-A)
read_disturb   RBER vs read count (flat below 1e6 reads)
batch_transfer one training die's model on sibling dies (Sec III-D)
methods   shared per-wordline collector behind figs 15-18
========  ==========================================================
"""
