"""Figure 19: LDPC decoding success — the sentinel parity worst case.

Section IV-C evaluates the pessimistic configuration where every sentinel
cell displaces ECC parity.  Three voltage sources (OPT, current flash after
its retry walk, sentinel after calibration) are decoded with a real LDPC
code under hard, 2-bit soft and 3-bit soft sensing across P/E counts; the
sentinel variant additionally punctures the parity fraction its cells
consumed.  Shapes to reproduce: everything decodes at low P/E; hard decoding
degrades first as wear grows; the punctured sentinel code sits slightly
below the other two under hard/2-bit sensing, and soft sensing recovers the
loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.controller import SentinelController
from repro.core.sentinel import worst_case_parity_donation
from repro.ecc.ldpc import LdpcCode
from repro.ecc.soft import SoftSensing, extract_frames, page_llrs
from repro.exp.common import ONE_YEAR_H, default_ecc, eval_chip, trained_model
from repro.flash.mechanisms import StressState
from repro.flash.optimal import optimal_offsets
from repro.retry import CurrentFlashPolicy
from repro.util.rng import derive_rng

METHODS = ("opt", "current-flash", "sentinel")
MODES = ("hard", "soft2", "soft3")


@dataclass
class Fig19Result:
    kind: str
    pe_cycles: Sequence[int]
    success: Dict[Tuple[str, str], np.ndarray]  # (mode, method) -> per-PE rate
    frames_per_point: int
    punctured_parity_fraction: float

    def rate(self, mode: str, method: str, pe: int) -> float:
        return float(self.success[(mode, method)][list(self.pe_cycles).index(pe)])

    def rows(self) -> list:
        out = []
        for mode in MODES:
            for i, pe in enumerate(self.pe_cycles):
                out.append(
                    (
                        mode,
                        pe,
                        *(
                            f"{self.success[(mode, m)][i]:.0%}"
                            for m in METHODS
                        ),
                    )
                )
        return out


def run_fig19(
    kind: str = "tlc",
    pe_cycles: Sequence[int] = (0, 1000, 2000, 3000, 4000, 5000),
    frame_bits: int = 2048,
    code_rate: float = 0.89,
    wordline_step: int = 64,
    frames_per_wordline: int = 4,
    page: str = "MSB",
    sentinel_ratio: float = 0.002,
) -> Fig19Result:
    """Decode real LDPC frames read at each method's final voltages."""
    chip = eval_chip(kind)
    spec = chip.spec
    ecc = default_ecc(kind)
    model = trained_model(kind)
    code = LdpcCode.random_regular(frame_bits, code_rate, seed=12)
    rng = derive_rng(19, "fig19", kind)

    # sentinel worst case: its cells puncture this fraction of the parity
    donated = worst_case_parity_donation(spec, sentinel_ratio)
    n_punct = int(round(donated * len(code.parity_cols)))
    punctured = np.zeros(frame_bits, dtype=bool)
    if n_punct:
        punctured[code.parity_cols[:n_punct]] = True

    indices = range(0, spec.wordlines_per_block, wordline_step)
    success = {
        (mode, method): np.zeros(len(pe_cycles))
        for mode in MODES
        for method in METHODS
    }
    for pi, pe in enumerate(pe_cycles):
        chip.set_block_stress(
            0, StressState(pe_cycles=pe, retention_hours=ONE_YEAR_H)
        )
        counts = {key: [0, 0] for key in success}  # decoded, total
        current_policy = CurrentFlashPolicy(ecc, spec)
        sentinel_policy = SentinelController(ecc, model)
        for wl in chip.iter_wordlines(0, indices):
            offsets = {
                "opt": optimal_offsets(wl),
                "current-flash": current_policy.read(wl, page).final_offsets,
                "sentinel": sentinel_policy.read(wl, page).final_offsets,
            }
            for method, off in offsets.items():
                for mode in MODES:
                    sensing = SoftSensing.for_pitch(spec.state_pitch, mode)
                    err, mag = page_llrs(wl, page, off, sensing, rng)
                    frames_e, frames_m = extract_frames(
                        err, mag, frame_bits, max_frames=frames_per_wordline
                    )
                    for fe, fm in zip(frames_e, frames_m):
                        result = code.decode_error_pattern(
                            fe,
                            fm,
                            punctured if method == "sentinel" else None,
                        )
                        key = (mode, method)
                        counts[key][0] += result.success
                        counts[key][1] += 1
        for key, (decoded, total) in counts.items():
            success[key][pi] = decoded / max(total, 1)
    return Fig19Result(
        kind=kind,
        pe_cycles=tuple(pe_cycles),
        success=success,
        frames_per_point=len(list(indices)) * frames_per_wordline,
        punctured_parity_fraction=donated,
    )
