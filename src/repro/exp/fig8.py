"""Figure 8: correlation between each voltage's optimum and the sentinel's.

The paper scatters, over wordlines from multiple blocks and stress
conditions, the optimal offset of every read voltage against the optimal
offset of V8 (QLC) and finds near-linear relationships — the property that
lets one sentinel voltage stand in for all fifteen.  We reuse the
characterization sweep's samples and report the per-voltage linear fits with
their R-squared.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fitting import fit_linear_correlations
from repro.exp.common import characterization


@dataclass
class Fig8Result:
    kind: str
    sentinel_voltage: int
    sentinel_optima: np.ndarray  # x-axis of every scatter panel
    optima: np.ndarray  # (n_samples, n_voltages)
    slopes: np.ndarray
    intercepts: np.ndarray
    r_squared: np.ndarray

    def rows(self) -> list:
        return [
            (
                f"V{v}",
                float(self.slopes[v - 1]),
                float(self.intercepts[v - 1]),
                float(self.r_squared[v - 1]),
            )
            for v in range(1, len(self.slopes) + 1)
        ]

    def min_programmed_r2(self) -> float:
        """Worst R^2 among programmed-state voltages (V2..Vmax).

        V1 borders the wide erased state and is the known outlier.
        """
        return float(self.r_squared[1:].min())


def run_fig8(kind: str = "qlc") -> Fig8Result:
    """Linear fits of every voltage's optimum against the sentinel's."""
    result = characterization(kind)
    model = result.model
    slopes, intercepts, r2 = fit_linear_correlations(
        result.optima, model.sentinel_voltage
    )
    return Fig8Result(
        kind=kind,
        sentinel_voltage=model.sentinel_voltage,
        sentinel_optima=result.sentinel_optima,
        optima=result.optima,
        slopes=slopes,
        intercepts=intercepts,
        r_squared=r2,
    )
