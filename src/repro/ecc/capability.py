"""Correction-capability threshold model of the page ECC.

A page stores several ECC frames; a page read succeeds only if *every* frame
decodes.  A frame decodes iff its raw bit errors stay within the capability.
Splitting the page into contiguous frames matters: on spatially non-uniform
wordlines the errors concentrate, so a page can fail even when its average
RBER looks fine — one of the effects the paper's calibration step exists to
handle.

The capability is expressed as a correctable RBER per frame.  Soft decoding
modes raise it (2-bit and 3-bit soft sensing feed the LDPC better LLRs), and
donating parity cells to sentinels lowers it (the Section IV-C worst case).
The default values are calibrated against the real LDPC decoder in
``tests/test_ecc_cross_validation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Union

import numpy as np

from repro.flash.spec import FlashSpec
from repro.flash.wordline import ReadResult
from repro.obs import OBS

#: Capability multiplier of each sensing/decoding mode relative to hard input.
MODE_GAIN = {"hard": 1.0, "soft2": 1.45, "soft3": 1.65}

#: Capability lost per unit fraction of parity donated to sentinel cells.
PARITY_LOSS_SLOPE = 1.2


@dataclass(frozen=True)
class CapabilityEcc:
    """Threshold-capability ECC.

    Parameters
    ----------
    capability_rber:
        Correctable raw bit error rate per frame for hard decoding with the
        full parity budget.
    frame_bits:
        Payload+parity bits covered by one frame (frames tile the page).
    mode:
        Sensing/decoding mode: ``hard``, ``soft2`` or ``soft3``.
    parity_donated:
        Fraction of the ECC parity space occupied by sentinel cells (the
        paper's worst case; 0 when sentinels fit in free OOB).
    """

    capability_rber: float = 2.8e-3
    frame_bits: int = 16384
    mode: str = "hard"
    parity_donated: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in MODE_GAIN:
            raise ValueError(f"unknown mode {self.mode!r}; one of {sorted(MODE_GAIN)}")
        if not 0.0 <= self.parity_donated < 1.0:
            raise ValueError("parity_donated must be in [0, 1)")
        if self.frame_bits <= 0:
            raise ValueError("frame_bits must be positive")

    # ------------------------------------------------------------------
    @classmethod
    def for_spec(cls, spec: FlashSpec, **overrides) -> "CapabilityEcc":
        """An ECC sized for a chip spec.

        The capability sits between the optimal-voltage RBER and the
        default-voltage RBER of an aged block — the regime the paper's
        evaluation lives in (default reads fail, optimal reads succeed).
        """
        capability = 5.0e-3
        frame_bits = min(16384, spec.cells_per_wordline // 4 or 1)
        params = dict(capability_rber=capability, frame_bits=frame_bits)
        params.update(overrides)
        return cls(**params)

    def with_mode(self, mode: str) -> "CapabilityEcc":
        return replace(self, mode=mode)

    def with_parity_donated(self, fraction: float) -> "CapabilityEcc":
        return replace(self, parity_donated=fraction)

    # ------------------------------------------------------------------
    @property
    def effective_rber(self) -> float:
        """Capability after the mode gain and the parity donation penalty."""
        gain = MODE_GAIN[self.mode]
        penalty = 1.0 - PARITY_LOSS_SLOPE * self.parity_donated
        return self.capability_rber * gain * max(penalty, 0.0)

    def max_errors_per_frame(self) -> int:
        return int(self.effective_rber * self.frame_bits)

    # ------------------------------------------------------------------
    def frame_error_counts(self, mismatch: np.ndarray) -> np.ndarray:
        """Per-frame error counts of a page given its error mask."""
        n = len(mismatch)
        n_frames = max(1, -(-n // self.frame_bits))  # ceil
        return np.array(
            [int(chunk.sum()) for chunk in np.array_split(mismatch, n_frames)],
            dtype=np.int64,
        )

    def decode_ok(self, read: Union[ReadResult, np.ndarray]) -> bool:
        """Whether the page decodes: every frame within capability."""
        mismatch = read.mismatch if isinstance(read, ReadResult) else read
        counts = self.frame_error_counts(np.asarray(mismatch, dtype=bool))
        ok = bool((counts <= self.max_errors_per_frame()).all())
        if OBS.enabled:
            if OBS.metrics.enabled:
                OBS.metrics.counter(
                    "repro_ecc_decodes_total",
                    help="page decode attempts by outcome",
                    result="ok" if ok else "fail",
                ).inc()
            if OBS.tracer.enabled:
                OBS.tracer.emit(
                    "ecc_decode",
                    decoded=ok,
                    frames=len(counts),
                    max_frame_errors=int(counts.max()),
                )
        return ok

    def decode_ok_batch(self, mismatch: np.ndarray) -> np.ndarray:
        """Batched :meth:`decode_ok`: one row of error masks per wordline.

        Frame boundaries match ``np.array_split`` in
        :meth:`frame_error_counts` exactly, so ``decode_ok_batch(m)[i] ==
        decode_ok(m[i])`` for every row; observability counters and events
        are emitted per row to keep aggregate counts identical to the
        per-row path (only their interleaving with other events differs).
        """
        m = np.asarray(mismatch, dtype=bool)
        n = m.shape[1]
        n_frames = max(1, -(-n // self.frame_bits))  # ceil
        base, rem = divmod(n, n_frames)
        sizes = [base + 1] * rem + [base] * (n_frames - rem)
        bounds = np.cumsum([0] + sizes[:-1])
        counts = np.add.reduceat(m.astype(np.int32), bounds, axis=1)
        ok = (counts <= self.max_errors_per_frame()).all(axis=1)
        if OBS.enabled:
            for i in range(len(ok)):
                row_ok = bool(ok[i])
                if OBS.metrics.enabled:
                    OBS.metrics.counter(
                        "repro_ecc_decodes_total",
                        help="page decode attempts by outcome",
                        result="ok" if row_ok else "fail",
                    ).inc()
                if OBS.tracer.enabled:
                    OBS.tracer.emit(
                        "ecc_decode",
                        decoded=row_ok,
                        frames=int(counts.shape[1]),
                        max_frame_errors=int(counts[i].max()),
                    )
        return ok

    def decode_ok_by_rate(self, rber: float) -> bool:
        """Uniform-error approximation, for analytic callers."""
        return rber <= self.effective_rber
