"""Hard and soft sensing: from cell voltages to decoder LLRs.

Hard decoding uses the single page read: every bit enters the decoder with
the same confidence.  Soft decoding re-reads the page with the thresholds
nudged around each read voltage — 2-bit soft sensing places one extra read on
each side (4 confidence levels), 3-bit places three (8 levels).  Cells sensed
close to a threshold get low-confidence LLRs, exactly the information an
LDPC min-sum decoder exploits.

Because normalized min-sum is invariant to a global LLR scale, only the
*ratios* between confidence levels matter; the tables below are standard
monotone profiles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.flash.wordline import OffsetsLike, Wordline

#: LLR magnitude per distance bin (nearest first) for each sensing mode.
_MAGNITUDES = {
    "hard": np.array([1.0]),
    "soft2": np.array([0.25, 1.0]),
    "soft3": np.array([0.20, 0.55, 0.85, 1.20]),
}


@dataclass(frozen=True)
class SoftSensing:
    """Sensing configuration for ECC decoding.

    ``delta`` is the spacing of the auxiliary reads in DAC steps; the default
    (set per chip from the state pitch) is chosen so the innermost bin
    brackets the distribution overlap region.
    """

    mode: str = "hard"
    delta: float = 8.0

    def __post_init__(self) -> None:
        if self.mode not in _MAGNITUDES:
            raise ValueError(
                f"unknown sensing mode {self.mode!r}; one of {sorted(_MAGNITUDES)}"
            )
        if self.delta <= 0:
            raise ValueError("delta must be positive")

    @classmethod
    def for_pitch(cls, state_pitch: int, mode: str = "hard") -> "SoftSensing":
        return cls(mode=mode, delta=max(2.0, 0.06 * state_pitch))

    @property
    def n_bins(self) -> int:
        return len(_MAGNITUDES[self.mode])

    @property
    def reads_per_voltage(self) -> int:
        """Sensing passes per read voltage (1, 3 or 7)."""
        return 2 * (self.n_bins - 1) + 1

    def magnitudes(self) -> np.ndarray:
        return _MAGNITUDES[self.mode]

    def magnitude_for_distance(self, distance: np.ndarray) -> np.ndarray:
        """LLR magnitude of cells at |distance| steps from the threshold."""
        mags = self.magnitudes()
        bins = np.minimum(
            (np.abs(distance) / self.delta).astype(np.int64), self.n_bins - 1
        )
        return mags[bins]


def page_llrs(
    wordline: Wordline,
    page: "int | str",
    offsets: OffsetsLike = None,
    sensing: Optional[SoftSensing] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Error mask and LLR magnitudes of one page read, data cells only.

    Returns ``(error_mask, magnitudes)`` — suitable for
    :meth:`repro.ecc.ldpc.LdpcCode.decode_error_pattern` via the symmetric
    channel shortcut.  The same sensed voltage drives both the readout and
    the soft bins, modelling back-to-back reads of the soft-sensing sweep.
    """
    sensing = sensing or SoftSensing.for_pitch(wordline.spec.state_pitch)
    spec = wordline.spec
    p = spec.gray.page_index(page)
    positions = wordline.page_positions(p, offsets)

    gen = rng if rng is not None else wordline._read_rng
    noise = spec.read_noise_sigma * gen.standard_normal(wordline.n_cells)
    sensed = wordline.vth + noise.astype(np.float32)

    regions = np.searchsorted(np.sort(positions), sensed, side="left")
    pattern = spec.gray.region_bits(p)
    bits = pattern[regions]
    stored = spec.gray.stored_bits(p, wordline.states)
    data_mask = ~wordline._sentinel_mask
    error_mask = (bits != stored)[data_mask]

    distances = np.min(
        np.abs(sensed[data_mask, None] - positions[None, :]), axis=1
    )
    magnitudes = sensing.magnitude_for_distance(distances)
    return error_mask, magnitudes


def extract_frames(
    error_mask: np.ndarray,
    magnitudes: np.ndarray,
    frame_len: int,
    max_frames: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Tile a page into decoder-sized frames.

    Returns ``(errors, mags)`` with shape ``(n_frames, frame_len)``; the tail
    that does not fill a frame is dropped.
    """
    n = len(error_mask) // frame_len
    if max_frames is not None:
        n = min(n, max_frames)
    if n == 0:
        raise ValueError("page too small for even one frame")
    cut = n * frame_len
    return (
        error_mask[:cut].reshape(n, frame_len),
        magnitudes[:cut].reshape(n, frame_len),
    )
