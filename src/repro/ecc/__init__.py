"""Error-correction substrate.

Two models with one interface:

* :class:`repro.ecc.capability.CapabilityEcc` — a calibrated
  correction-capability threshold: a frame decodes iff its raw bit errors do
  not exceed the capability.  Fast enough for block-scale sweeps; this is
  what the read controllers use.
* :class:`repro.ecc.ldpc.LdpcCode` — a real (random regular) LDPC code with
  a normalized min-sum decoder, fed by the hard / 2-bit soft / 3-bit soft
  sensing LLRs of :mod:`repro.ecc.soft`.  This is what the Figure 19
  decoding-success experiment runs.

Additionally, :class:`repro.ecc.bch.BchCode` implements the classic binary
BCH code (syndromes / Berlekamp-Massey / Chien) whose exact-``t`` guarantee
is what the capability model abstracts — used to cross-validate it.
"""

from repro.ecc.capability import CapabilityEcc
from repro.ecc.ldpc import LdpcCode, DecodeResult
from repro.ecc.bch import BchCode, BchDecodeResult
from repro.ecc.gf import GF2m, field
from repro.ecc.page_ecc import RealPageEcc, ShortenedBch, shortened_bch
from repro.ecc.soft import SoftSensing, page_llrs

__all__ = [
    "CapabilityEcc",
    "LdpcCode",
    "DecodeResult",
    "BchCode",
    "BchDecodeResult",
    "GF2m",
    "field",
    "RealPageEcc",
    "ShortenedBch",
    "shortened_bch",
    "SoftSensing",
    "page_llrs",
]
