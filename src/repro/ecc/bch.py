"""Binary BCH code: the classic hard-decision flash ECC.

Pre-LDPC flash controllers corrected errors with binary BCH codes, whose
guarantee — *exactly* ``t`` correctable errors per frame — is what the
capability-threshold model of :mod:`repro.ecc.capability` abstracts.  This
implementation closes that loop: a real code whose behaviour the threshold
model must match (see ``tests/test_bch.py``).

Standard construction: codeword length ``n = 2^m - 1``; the generator is the
LCM of the minimal polynomials of ``alpha^1 .. alpha^{2t}``.  Decoding is
syndromes -> Berlekamp-Massey -> Chien search.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce

import numpy as np

from repro.ecc.gf import GF2m, field


@dataclass(frozen=True)
class BchDecodeResult:
    bits: np.ndarray  # corrected codeword
    success: bool  # decoded within the design distance
    errors_corrected: int


def _poly_mul_gf2(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Multiply binary polynomials (coefficient arrays, lowest first)."""
    out = np.zeros(len(p) + len(q) - 1, dtype=np.int64)
    for i in np.nonzero(p)[0]:
        out[i : i + len(q)] ^= q
    return out % 2 if out.max() <= 1 else out & 1


class BchCode:
    """Binary BCH over GF(2^m), correcting up to ``t`` errors."""

    def __init__(self, m: int, t: int) -> None:
        if t < 1:
            raise ValueError("t must be >= 1")
        self.gf: GF2m = field(m)
        self.m = m
        self.t = t
        self.n = self.gf.order
        # generator polynomial: LCM of minimal polynomials of alpha^1..2t
        minimal = {self.gf.minimal_polynomial(j) for j in range(1, 2 * t + 1)}
        gen = np.array([1], dtype=np.int64)
        for poly in sorted(minimal):
            gen = _poly_mul_gf2(gen, np.array(poly, dtype=np.int64))
        self.generator = gen
        self.n_parity = len(gen) - 1
        self.k = self.n - self.n_parity
        if self.k <= 0:
            raise ValueError(f"t={t} too large for m={m}: no data bits left")

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(self, data: np.ndarray) -> np.ndarray:
        """Systematic encoding: data occupies the high-order positions."""
        data = np.asarray(data, dtype=np.int64)
        if data.shape != (self.k,):
            raise ValueError(f"expected {self.k} data bits, got {data.shape}")
        # remainder of data(x) * x^n_parity mod g(x)
        register = np.zeros(self.n_parity, dtype=np.int64)
        g_low = self.generator[:-1]  # deg-1 ... 0 coefficients
        for bit in data[::-1]:
            feedback = int(bit) ^ int(register[-1])
            register[1:] = register[:-1]
            register[0] = 0
            if feedback:
                register ^= g_low
        codeword = np.zeros(self.n, dtype=np.int64)
        codeword[self.n_parity :] = data
        codeword[: self.n_parity] = register
        return codeword

    def is_codeword(self, bits: np.ndarray) -> bool:
        return not any(self._syndromes(np.asarray(bits, dtype=np.int64)))

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def _syndromes(self, received: np.ndarray) -> list:
        positions = np.nonzero(received)[0]
        syndromes = []
        if len(positions) == 0:
            return [0] * (2 * self.t)
        logs = positions.astype(np.int64)
        for j in range(1, 2 * self.t + 1):
            terms = self.gf.exp[(logs * j) % self.gf.order]
            syndromes.append(int(np.bitwise_xor.reduce(terms)))
        return syndromes

    def _berlekamp_massey(self, syndromes: list) -> np.ndarray:
        """Error-locator polynomial Lambda (lowest-degree first)."""
        gf = self.gf
        c = np.zeros(2 * self.t + 2, dtype=np.int64)
        b = np.zeros(2 * self.t + 2, dtype=np.int64)
        c[0] = b[0] = 1
        length, shift = 0, 1
        b_scale = 1
        for i, s in enumerate(syndromes):
            # discrepancy
            d = s
            for j in range(1, length + 1):
                if c[j] and syndromes[i - j]:
                    d ^= gf.mul(int(c[j]), syndromes[i - j])
            if d == 0:
                shift += 1
                continue
            coeff = gf.div(d, b_scale)
            t_poly = c.copy()
            for j in range(len(c) - shift):
                if b[j]:
                    c[j + shift] ^= gf.mul(coeff, int(b[j]))
            if 2 * length <= i:
                length = i + 1 - length
                b = t_poly
                b_scale = d
                shift = 1
            else:
                shift += 1
        degree = max(np.nonzero(c)[0]) if c.any() else 0
        return c[: degree + 1]

    def _chien_search(self, locator: np.ndarray) -> np.ndarray:
        """Error positions: i where Lambda(alpha^{-i}) == 0."""
        gf = self.gf
        candidates = gf.exp[(-np.arange(self.n)) % gf.order]
        values = gf.poly_eval_many(locator, candidates)
        return np.nonzero(values == 0)[0]

    def decode(self, received: np.ndarray) -> BchDecodeResult:
        """Correct up to ``t`` errors; report failure beyond that."""
        received = np.asarray(received, dtype=np.int64)
        if received.shape != (self.n,):
            raise ValueError(f"expected {self.n} bits, got {received.shape}")
        syndromes = self._syndromes(received)
        if not any(syndromes):
            return BchDecodeResult(
                bits=received.copy(), success=True, errors_corrected=0
            )
        locator = self._berlekamp_massey(syndromes)
        degree = len(locator) - 1
        corrected = received.copy()
        if degree > self.t:
            return BchDecodeResult(bits=corrected, success=False,
                                   errors_corrected=0)
        positions = self._chien_search(locator)
        if len(positions) != degree:
            # locator does not split: more than t errors
            return BchDecodeResult(bits=corrected, success=False,
                                   errors_corrected=0)
        corrected[positions] ^= 1
        if not self.is_codeword(corrected):  # pragma: no cover - safety net
            return BchDecodeResult(bits=corrected, success=False,
                                   errors_corrected=0)
        return BchDecodeResult(
            bits=corrected, success=True, errors_corrected=len(positions)
        )

    # ------------------------------------------------------------------
    def extract_data(self, codeword: np.ndarray) -> np.ndarray:
        return np.asarray(codeword, dtype=np.int64)[self.n_parity :]

    @property
    def rate(self) -> float:
        return self.k / self.n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BchCode(n={self.n}, k={self.k}, t={self.t})"
