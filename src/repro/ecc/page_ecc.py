"""Real-code page ECC: run the controllers against actual decoders.

:class:`repro.ecc.capability.CapabilityEcc` abstracts a decoder as a
threshold so block-scale sweeps stay fast.  This module provides the
non-abstracted alternative: a page ECC whose ``decode_ok`` tiles the page
into frames and runs a *real* decoder (BCH or LDPC) on each one, via the
symmetric-channel shortcut (all-zero codeword, the page's error mask as the
received pattern).  Any read policy accepts it in place of the threshold
model, so the whole sentinel pipeline can be validated against genuine
coding behaviour — see ``tests/test_page_ecc.py``.

Shortening: flash frames rarely match a natural code length, so
:func:`shortened_bch` builds a BCH whose data portion is cut down (leading
data bits pinned to zero), the standard construction in flash controllers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.ecc.bch import BchCode
from repro.ecc.ldpc import LdpcCode
from repro.flash.wordline import ReadResult
from repro.obs import OBS


@dataclass(frozen=True)
class ShortenedBch:
    """A BCH code with the leading data bits pinned to zero.

    The effective frame carries ``frame_bits = n - shortened`` bits with the
    same correction power ``t`` (shortening never weakens a BCH code).
    """

    base: BchCode
    shortened: int

    def __post_init__(self) -> None:
        if not 0 <= self.shortened < self.base.k:
            raise ValueError("can only shorten within the data portion")

    @property
    def frame_bits(self) -> int:
        return self.base.n - self.shortened

    @property
    def t(self) -> int:
        return self.base.t

    def decode_error_mask(self, mask: np.ndarray) -> bool:
        """Whether a frame with the given error positions decodes."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.frame_bits,):
            raise ValueError(
                f"expected {self.frame_bits} bits, got {mask.shape}"
            )
        received = np.zeros(self.base.n, dtype=np.int64)
        # shortened positions sit at the head of the data portion and are
        # known-zero; the frame occupies the rest of the codeword
        received[self.base.n - self.frame_bits :] = mask
        result = self.base.decode(received)
        return bool(result.success and not result.bits.any())


def shortened_bch(frame_bits: int, t: int, m: int = 13) -> ShortenedBch:
    """A BCH correcting ``t`` errors over exactly ``frame_bits`` bits."""
    base = BchCode(m=m, t=t)
    if frame_bits > base.n:
        raise ValueError(
            f"frame of {frame_bits} bits exceeds the m={m} code length {base.n}"
        )
    return ShortenedBch(base=base, shortened=base.n - frame_bits)


class RealPageEcc:
    """Page ECC backed by a real decoder; drop-in for ``CapabilityEcc``.

    Implements the two methods the read policies use (``decode_ok`` and
    ``with_mode``) by tiling the page's error mask into code-sized frames.
    ``mode`` switching is supported for LDPC (soft decoding raises the LLR
    quality, approximated here by scaling weak-error confidence); BCH is
    hard-decision only and ignores it.
    """

    def __init__(self, code: Union[ShortenedBch, LdpcCode], mode: str = "hard"):
        self.code = code
        self.mode = mode

    # -- CapabilityEcc-compatible surface --------------------------------
    def with_mode(self, mode: str) -> "RealPageEcc":
        return RealPageEcc(self.code, mode=mode)

    def decode_ok(self, read: Union[ReadResult, np.ndarray]) -> bool:
        mask = read.mismatch if isinstance(read, ReadResult) else read
        mask = np.asarray(mask, dtype=bool)
        frame_bits = (
            self.code.frame_bits
            if isinstance(self.code, ShortenedBch)
            else self.code.n
        )
        n_frames = len(mask) // frame_bits
        if n_frames == 0:
            raise ValueError("page smaller than one ECC frame")
        page_ok = True
        for f in range(n_frames):
            frame = mask[f * frame_bits : (f + 1) * frame_bits]
            if isinstance(self.code, ShortenedBch):
                ok = self.code.decode_error_mask(frame)
            else:
                magnitude = np.ones(len(frame))
                if self.mode != "hard":
                    # soft sensing: errors sit near thresholds and arrive
                    # with reduced confidence
                    magnitude = np.where(frame, 0.4, 1.0)
                ok = self.code.decode_error_pattern(frame, magnitude).success
            if not ok:
                page_ok = False
                break
        if OBS.enabled and OBS.metrics.enabled:
            OBS.metrics.counter(
                "repro_ecc_decodes_total",
                help="page decode attempts by outcome",
                result="ok" if page_ok else "fail",
            ).inc()
        # the tail shorter than a frame is covered by the last frame's
        # spare correction budget on real devices; ignore it here
        return page_ok
