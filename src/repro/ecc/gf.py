"""Galois-field arithmetic GF(2^m) with log/antilog tables.

Substrate for the BCH code.  Elements are integers in ``[0, 2^m)``; zero is
special-cased (log undefined).  Multiplication and division go through the
discrete-log tables, which makes the vectorized syndrome/Chien evaluations
in :mod:`repro.ecc.bch` cheap numpy gathers.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

#: Primitive polynomials (bitmask incl. the x^m term) for GF(2^m).
PRIMITIVE_POLYS = {
    4: 0b10011,  # x^4 + x + 1
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,  # x^10 + x^3 + 1
    11: 0b100000000101,
    12: 0b1000001010011,
    13: 0b10000000011011,
}


class GF2m:
    """GF(2^m) with precomputed exponential and logarithm tables."""

    def __init__(self, m: int) -> None:
        if m not in PRIMITIVE_POLYS:
            raise ValueError(f"unsupported field degree m={m}")
        self.m = m
        self.size = 1 << m
        self.order = self.size - 1  # multiplicative group order
        poly = PRIMITIVE_POLYS[m]
        exp = np.zeros(2 * self.order, dtype=np.int64)
        log = np.zeros(self.size, dtype=np.int64)
        x = 1
        for i in range(self.order):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & self.size:
                x ^= poly
        exp[self.order : 2 * self.order] = exp[: self.order]
        self.exp = exp
        self.log = log

    # ------------------------------------------------------------------
    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return int(self.exp[self.log[a] + self.log[b]])

    def div(self, a: int, b: int) -> int:
        if b == 0:
            raise ZeroDivisionError("GF division by zero")
        if a == 0:
            return 0
        return int(self.exp[(self.log[a] - self.log[b]) % self.order])

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("zero has no inverse")
        return int(self.exp[self.order - self.log[a]])

    def pow(self, a: int, k: int) -> int:
        if a == 0:
            return 0 if k else 1
        return int(self.exp[(self.log[a] * k) % self.order])

    def alpha_pow(self, k: int) -> int:
        """alpha**k for the primitive element alpha."""
        return int(self.exp[k % self.order])

    # ------------------------------------------------------------------
    # polynomials over GF(2^m): lowest-degree coefficient first
    # ------------------------------------------------------------------
    def poly_mul(self, p: np.ndarray, q: np.ndarray) -> np.ndarray:
        out = np.zeros(len(p) + len(q) - 1, dtype=np.int64)
        for i, a in enumerate(p):
            if a == 0:
                continue
            for j, b in enumerate(q):
                if b == 0:
                    continue
                out[i + j] ^= self.mul(int(a), int(b))
        return out

    def poly_eval(self, p: np.ndarray, x: int) -> int:
        """Horner evaluation of a polynomial at one point."""
        acc = 0
        for coeff in p[::-1]:
            acc = self.mul(acc, x) ^ int(coeff)
        return acc

    def poly_eval_many(self, p: np.ndarray, xs: np.ndarray) -> np.ndarray:
        """Vectorized evaluation at many nonzero points via log tables."""
        xs = np.asarray(xs, dtype=np.int64)
        acc = np.zeros(len(xs), dtype=np.int64)
        log_xs = self.log[xs]
        for k, coeff in enumerate(p):
            if coeff == 0:
                continue
            term = self.exp[(self.log[coeff] + k * log_xs) % self.order]
            acc ^= term
        return acc

    # ------------------------------------------------------------------
    @lru_cache(maxsize=None)
    def minimal_polynomial(self, k: int) -> tuple:
        """Minimal polynomial (over GF(2)) of alpha**k, as a coefficient
        tuple (lowest degree first, entries 0/1)."""
        # conjugacy class of k under doubling mod order
        cls = set()
        cur = k % self.order
        while cur not in cls:
            cls.add(cur)
            cur = (cur * 2) % self.order
        poly = np.array([1], dtype=np.int64)
        for j in sorted(cls):
            root = self.alpha_pow(j)
            poly = self.poly_mul(poly, np.array([root, 1], dtype=np.int64))
        # all coefficients must collapse into GF(2)
        if not set(int(c) for c in poly) <= {0, 1}:
            raise AssertionError("minimal polynomial not binary")
        return tuple(int(c) for c in poly)


@lru_cache(maxsize=None)
def field(m: int) -> GF2m:
    """Shared field instance per degree."""
    return GF2m(m)
