"""A real LDPC code: random regular construction + normalized min-sum.

Used by the Figure 19 experiment, which needs actual decoding success rates
under hard, 2-bit soft and 3-bit soft sensing, including the degradation when
sentinel cells puncture part of the parity (the Section IV-C worst case).

Construction
------------
A (near-)regular parity-check matrix with column weight ``col_weight`` is
drawn at random (checks balanced via round-robin assignment with duplicate
avoidance).  Encoding uses the reduced row-echelon form of H over GF(2):
pivot columns carry parity, the remaining columns carry data.

Decoding
--------
Normalized min-sum belief propagation over the Tanner graph, fully
vectorized with ``np.minimum.reduceat`` / ``np.multiply.reduceat`` over
check-sorted edges.  Punctured positions enter with LLR 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.util.rng import derive_rng


@dataclass(frozen=True)
class DecodeResult:
    bits: np.ndarray  # hard decisions for all n positions
    success: bool  # all parity checks satisfied
    iterations: int  # iterations actually run


def _rref_gf2(matrix: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Reduced row-echelon form over GF(2); returns (rref, pivot columns)."""
    h = matrix.copy().astype(np.uint8)
    m, n = h.shape
    pivots = []
    row = 0
    for col in range(n):
        if row >= m:
            break
        nz = np.nonzero(h[row:, col])[0]
        if len(nz) == 0:
            continue
        pivot_row = row + nz[0]
        if pivot_row != row:
            h[[row, pivot_row]] = h[[pivot_row, row]]
        mask = h[:, col].astype(bool)
        mask[row] = False
        h[mask] ^= h[row]
        pivots.append(col)
        row += 1
    return h[:row], np.array(pivots, dtype=np.int64)


class LdpcCode:
    """A binary LDPC code with a normalized min-sum decoder."""

    def __init__(self, h: np.ndarray) -> None:
        h = np.asarray(h, dtype=np.uint8)
        if h.ndim != 2:
            raise ValueError("H must be a 2-D binary matrix")
        self.h = h
        self.m, self.n = h.shape
        rref, pivots = _rref_gf2(h)
        if len(pivots) != rref.shape[0]:  # pragma: no cover - defensive
            raise ValueError("inconsistent parity-check matrix")
        self._rref = rref
        self.parity_cols = pivots
        self.data_cols = np.setdiff1d(np.arange(self.n), pivots)
        self.k = len(self.data_cols)
        # Tanner graph, sorted by check for reduceat-based updates.
        check_idx, var_idx = np.nonzero(h)
        order = np.argsort(check_idx, kind="stable")
        self.edge_check = check_idx[order].astype(np.int64)
        self.edge_var = var_idx[order].astype(np.int64)
        self.n_edges = len(self.edge_var)
        self.check_starts = np.searchsorted(self.edge_check, np.arange(self.m))

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def random_regular(
        cls, n: int, rate: float, col_weight: int = 3, seed: int = 0
    ) -> "LdpcCode":
        """Random near-regular code of length ``n`` and design rate ``rate``."""
        if not 0.0 < rate < 1.0:
            raise ValueError("rate must be in (0, 1)")
        m = int(round(n * (1.0 - rate)))
        if m < col_weight:
            raise ValueError("too few checks for the column weight")
        rng = derive_rng(seed, "ldpc", n, m, col_weight)
        h = np.zeros((m, n), dtype=np.uint8)
        degrees = np.zeros(m, dtype=np.int64)
        used_pairs = set()
        for var in range(n):
            chosen = None
            # prefer a check set introducing no repeated check-pair: two
            # variables sharing two checks form a 4-cycle, the dominant
            # cause of min-sum failures on light error patterns
            for attempt in range(60):
                # bias toward lightly-loaded checks to keep rows balanced
                weights = 1.0 / (1.0 + degrees)
                probs = weights / weights.sum()
                candidate = rng.choice(m, size=col_weight, replace=False, p=probs)
                pairs = {
                    (min(int(a), int(b)), max(int(a), int(b)))
                    for i, a in enumerate(candidate)
                    for b in candidate[i + 1 :]
                }
                if attempt < 59 and pairs & used_pairs:
                    continue
                chosen = candidate
                used_pairs |= pairs
                break
            for check in chosen:
                h[check, var] = 1
                degrees[check] += 1
        # ensure no degenerate (weight<2) checks
        for check in range(m):
            while h[check].sum() < 2:
                var = int(rng.integers(n))
                if not h[check, var]:
                    h[check, var] = 1
        return cls(h)

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        """Systematic-ish encoding: data in ``data_cols``, parity solved.

        From ``H_rref @ x = 0``: each pivot position equals the XOR of the
        rref row restricted to the data columns.
        """
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        if data_bits.shape != (self.k,):
            raise ValueError(f"expected {self.k} data bits, got {data_bits.shape}")
        codeword = np.zeros(self.n, dtype=np.uint8)
        codeword[self.data_cols] = data_bits
        parity = (self._rref[:, self.data_cols] @ data_bits) % 2
        codeword[self.parity_cols] = parity
        return codeword

    def syndrome(self, bits: np.ndarray) -> np.ndarray:
        return (self.h @ np.asarray(bits, dtype=np.uint8)) % 2

    def is_codeword(self, bits: np.ndarray) -> bool:
        return not self.syndrome(bits).any()

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode(
        self,
        llr: np.ndarray,
        max_iterations: int = 40,
        normalization: float = 0.8,
    ) -> DecodeResult:
        """Normalized min-sum decoding.

        ``llr[i] > 0`` favors bit 0.  Punctured/erased positions should come
        in as 0.  Returns hard decisions and whether all checks ended
        satisfied.
        """
        llr = np.asarray(llr, dtype=np.float64)
        if llr.shape != (self.n,):
            raise ValueError(f"expected {self.n} LLRs, got {llr.shape}")
        var_to_check = llr[self.edge_var].copy()
        check_to_var = np.zeros(self.n_edges)
        starts = self.check_starts
        edge_check = self.edge_check
        edge_var = self.edge_var

        bits = (llr < 0).astype(np.uint8)
        if self.is_codeword(bits):
            return DecodeResult(bits=bits, success=True, iterations=0)

        iteration = 0
        for iteration in range(1, max_iterations + 1):
            # --- check-node update (exclude-self min and sign product) ---
            mags = np.abs(var_to_check)
            signs = np.where(var_to_check < 0, -1.0, 1.0)
            min1 = np.minimum.reduceat(mags, starts)
            group_min = min1[edge_check]
            is_min = mags <= group_min
            n_min = np.add.reduceat(is_min.astype(np.int64), starts)
            masked = np.where(is_min, np.inf, mags)
            min2 = np.minimum.reduceat(masked, starts)
            # a check with several edges at the minimum: exclude-self min is
            # still min1 even for the minimal edges
            min2 = np.where(n_min > 1, min1, min2)
            sign_prod = np.multiply.reduceat(signs, starts)
            excl_sign = sign_prod[edge_check] * signs
            excl_mag = np.where(is_min & (n_min[edge_check] == 1),
                                min2[edge_check], min1[edge_check])
            check_to_var = normalization * excl_sign * np.where(
                np.isfinite(excl_mag), excl_mag, 0.0
            )
            # --- variable-node update ---
            totals = llr + np.bincount(
                edge_var, weights=check_to_var, minlength=self.n
            )
            var_to_check = totals[edge_var] - check_to_var
            bits = (totals < 0).astype(np.uint8)
            if self.is_codeword(bits):
                return DecodeResult(bits=bits, success=True, iterations=iteration)
        return DecodeResult(bits=bits, success=False, iterations=iteration)

    # ------------------------------------------------------------------
    def decode_error_pattern(
        self,
        error_mask: np.ndarray,
        llr_magnitude: np.ndarray,
        punctured: Optional[np.ndarray] = None,
        max_iterations: int = 40,
    ) -> DecodeResult:
        """Decode assuming the all-zero codeword (symmetric-channel shortcut).

        ``error_mask[i]`` says position ``i`` was received flipped;
        ``llr_magnitude[i]`` is the sensing confidence.  Success means the
        decoder returned to the all-zero codeword.
        """
        error_mask = np.asarray(error_mask, dtype=bool)
        mag = np.asarray(llr_magnitude, dtype=np.float64)
        llr = np.where(error_mask, -mag, mag)
        if punctured is not None:
            llr = llr.copy()
            llr[np.asarray(punctured, dtype=bool)] = 0.0
        result = self.decode(llr, max_iterations=max_iterations)
        success = result.success and not result.bits.any()
        return DecodeResult(
            bits=result.bits, success=success, iterations=result.iterations
        )
