"""The tournament report: one policy race, every cell's scorecard.

Deterministic and **worker-count-free**, like the fleet and replay
reports: every field derives from the virtual-time simulation and the
grid definition, cells merge in canonical (policy, age, frontend) order,
and ``to_json()`` sorts keys — so the JSON is byte-identical across
``--workers 1/2/4``.  Each cell embeds SHA-256 digests of the exact
bytes its standalone equivalents produce (the measured
:class:`RetryProfile` samples and the :class:`ReplayReport` JSON), which
is what the golden differential tests compare: the harness must add
zero perturbation on top of ``RetryProfile.measure`` + the broker.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.report import format_table


def profile_digest(profile) -> str:
    """SHA-256 over a :class:`RetryProfile`'s exact measured content.

    Canonical byte stream: policy name, pipelined flag, then per page
    type (ascending) the voltage count and the raw little-endian sample
    array bytes.  Two profiles digest equal iff their measurements are
    byte-identical.
    """
    h = hashlib.sha256()
    h.update(profile.policy_name.encode())
    h.update(b"|pipelined=%d" % int(profile.pipelined))
    for p in sorted(profile.samples):
        h.update(b"|page=%d:%d|" % (p, profile.page_voltages[p]))
        h.update(profile.samples[p].astype("<i8").tobytes())
    return h.hexdigest()


def replay_digest(report) -> str:
    """SHA-256 of a :class:`ReplayReport`'s exact JSON bytes."""
    return hashlib.sha256(report.to_json().encode()).hexdigest()


@dataclass
class TournamentReport:
    """Scorecards of one (policy x chip-age x frontend) race."""

    kind: str
    seed: int
    cells_per_wordline: int
    sentinel_ratio: float
    requests_per_cell: int
    wordline_step: int
    policies: List[str] = field(default_factory=list)
    ages: List[str] = field(default_factory=list)
    frontends: List[str] = field(default_factory=list)
    #: one dict per grid cell, in canonical (policy, age, frontend) order
    cells: List[Dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def balanced(self) -> bool:
        """Every cell satisfies served + degraded + shed == offered."""
        return all(c.get("balanced", False) for c in self.cells)

    def cell(self, policy: str, age: str, frontend: str) -> Optional[Dict[str, Any]]:
        for c in self.cells:
            if (
                c["policy"] == policy
                and c["age"] == age
                and c["frontend"] == frontend
            ):
                return c
        return None

    def sentinel_beats(self, baseline: str = "current-flash",
                       sentinel: str = "sentinel") -> bool:
        """The --check floor: strictly fewer retries/read than the
        baseline on **every** (age, frontend) cell both policies ran."""
        compared = 0
        for age in self.ages:
            for frontend in self.frontends:
                s = self.cell(sentinel, age, frontend)
                b = self.cell(baseline, age, frontend)
                if s is None or b is None:
                    continue
                compared += 1
                if not s["retries_per_read"] < b["retries_per_read"]:
                    return False
        return compared > 0

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))

    # ------------------------------------------------------------------
    def render(self) -> str:
        lines: List[str] = [
            (
                f"tournament report: {self.kind} x {len(self.policies)} "
                f"policies x {len(self.ages)} ages x "
                f"{len(self.frontends)} frontends (seed {self.seed}, "
                f"{self.cells_per_wordline} cells/wordline, "
                f"{self.requests_per_cell} requests/cell)"
            )
        ]
        rows = []
        for c in self.cells:
            vs = c.get("vs_sentinel") or {}
            delta = vs.get("retries_per_read")
            rows.append((
                c["policy"],
                c["age"],
                c["frontend"],
                f"{c['retries_per_read']:.3f}",
                f"{c['mean_read_us']:.0f}",
                f"{c['p99_us']:.0f}",
                f"{c['completed_iops']:.0f}",
                f"{c['served']}/{c['degraded']}/{c['shed']}",
                "ok" if c.get("balanced") else "IMBALANCED",
                "-" if delta is None else f"{delta:+.3f}",
            ))
        lines.append(format_table(
            rows,
            headers=["policy", "age", "frontend", "retries/read",
                     "mean us", "p99 us", "iops", "srv/deg/shed",
                     "acct", "vs sentinel"],
        ))
        if not self.balanced:
            lines.append("ACCOUNTING IMBALANCED: at least one cell broke "
                         "served + degraded + shed == offered")
        return "\n".join(lines)
