"""Policy tournament: race every read-retry rival under one harness.

Entry points: :func:`run_tournament` (library), ``python -m repro
tournament`` (CLI), ``make tournament-smoke`` (CI floor).  The committed
``benchmarks/BENCH_policies.json`` is one :class:`TournamentReport`
serialized by :meth:`TournamentReport.to_json`.
"""

from repro.tournament.report import (
    TournamentReport,
    profile_digest,
    replay_digest,
)
from repro.tournament.runner import (
    AGE_NAMES,
    AGE_STRESSES,
    POLICY_ALIASES,
    POLICY_NAMES,
    TournamentConfig,
    build_policy,
    cell_spec,
    cell_stress,
    measure_cell_profile,
    measure_stress_profile,
    replay_cell_frontend,
    run_tournament,
    tournament_model,
)

__all__ = [
    "AGE_NAMES",
    "AGE_STRESSES",
    "POLICY_ALIASES",
    "POLICY_NAMES",
    "TournamentConfig",
    "TournamentReport",
    "build_policy",
    "cell_spec",
    "cell_stress",
    "measure_cell_profile",
    "measure_stress_profile",
    "profile_digest",
    "replay_cell_frontend",
    "replay_digest",
    "run_tournament",
    "tournament_model",
]
