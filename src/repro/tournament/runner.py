"""The policy tournament: every read-retry rival raced under one harness.

A tournament races a set of :class:`ReadPolicy` implementations across a
(replay frontend x chip age x chip kind) grid.  One **cell** is fully
self-contained and runs exactly the standalone pipeline:

1. build the evaluation chip (``EVAL_SEED``) and age block 0 with the
   cell's stress preset;
2. (learning policies only) one warm-up sweep over the *odd* wordline
   subset, then ``commit_feedback()`` — train/measure split;
3. measure a :class:`RetryProfile` over the even wordline subset with
   ``RetryProfile.measure(workers=1)``;
4. replay the cell's synthetic frontend through the serving broker with
   that profile (cold == warm: every policy is scored on its own reads,
   no sentinel cache advantage).

Cells shard over :class:`repro.engine.ParallelMap` and merge in canonical
(policy, age, frontend) order, so the :class:`TournamentReport` JSON is
byte-identical at any ``--workers`` — a cell never shares state with
another, and all observability (``tournament_cell`` events,
``repro_tournament_*`` metrics) is emitted parent-side after the merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

from repro.ecc.capability import CapabilityEcc
from repro.engine import ParallelMap
from repro.flash.chip import FlashChip
from repro.flash.mechanisms import StressState
from repro.flash.spec import FlashSpec
from repro.obs import OBS
from repro.ssd.retry_model import RetryProfile
from repro.ssd.timing import NandTiming
from repro.tournament.report import (
    TournamentReport,
    profile_digest,
    replay_digest,
)

#: grid policies, canonical order (CLI aliases in :data:`POLICY_ALIASES`)
POLICY_NAMES: Tuple[str, ...] = (
    "current-flash",
    "sentinel",
    "tracking+sentinel",
    "adaptive-retry",
    "online-model",
    "opt",
)

#: accepted spellings -> canonical policy name
POLICY_ALIASES: Dict[str, str] = {
    **{name: name for name in POLICY_NAMES},
    "tracked-sentinel": "tracking+sentinel",
    "adaptive": "adaptive-retry",
    "oracle": "opt",
}

#: chip-age presets: mid-life and end-of-life (the paper's Section IV
#: evaluation point) per chip kind
AGE_STRESSES: Dict[str, Dict[str, StressState]] = {
    "tlc": {
        "mid": StressState(pe_cycles=3000, retention_hours=4000.0),
        "old": StressState(pe_cycles=5000, retention_hours=8760.0),
    },
    "qlc": {
        "mid": StressState(pe_cycles=600, retention_hours=2000.0),
        "old": StressState(pe_cycles=1000, retention_hours=8760.0),
    },
}

AGE_NAMES: Tuple[str, ...] = ("mid", "old")


def cell_spec(kind: str, cells_per_wordline: int) -> FlashSpec:
    from repro.exp.common import sim_spec

    return sim_spec(kind, cells_per_wordline=cells_per_wordline)


def cell_stress(kind: str, age: str) -> StressState:
    try:
        return AGE_STRESSES[kind.lower()][age]
    except KeyError:
        raise ValueError(
            f"unknown age {age!r} for kind {kind!r}; "
            f"use one of {sorted(AGE_NAMES)}"
        ) from None


@lru_cache(maxsize=None)
def tournament_model(
    kind: str, cells_per_wordline: int, sentinel_ratio: float
):
    """Sentinel model fitted at the tournament's chip scale (cached).

    At the standard experiment scale this is exactly the factory model of
    :func:`repro.exp.common.trained_model`; smaller (smoke) scales fit
    their own training die with the same stress sweep — seconds, not
    minutes, at a few thousand cells per wordline.
    """
    from repro.core.characterization import characterize_chip
    from repro.exp.common import (
        SIM_CELLS,
        TRAIN_SEED,
        trained_model,
        training_stresses,
    )

    if cells_per_wordline == SIM_CELLS:
        return trained_model(kind, sentinel_ratio)
    spec = cell_spec(kind, cells_per_wordline)
    chip = FlashChip(spec, seed=TRAIN_SEED, sentinel_ratio=sentinel_ratio)
    result = characterize_chip(
        chip,
        blocks=(0,),
        stresses=training_stresses(kind),
        wordlines=range(0, spec.wordlines_per_block, 8),
    )
    return result.model


def build_policy(name: str, ecc: CapabilityEcc, spec: FlashSpec,
                 chip: FlashChip, model) -> Any:
    """Construct one tournament policy against the cell's chip."""
    from repro.core.controller import SentinelController
    from repro.retry import (
        AdaptiveRetryPolicy,
        CurrentFlashPolicy,
        OnlineModelPolicy,
        OraclePolicy,
        TrackedSentinelPolicy,
    )

    canonical = POLICY_ALIASES.get(name)
    if canonical is None:
        raise ValueError(
            f"unknown policy {name!r}; use one of {sorted(POLICY_ALIASES)}"
        )
    if canonical == "current-flash":
        return CurrentFlashPolicy(ecc, spec)
    if canonical == "sentinel":
        return SentinelController(ecc, model)
    if canonical == "tracking+sentinel":
        return TrackedSentinelPolicy(ecc, chip, model)
    if canonical == "adaptive-retry":
        return AdaptiveRetryPolicy(ecc, spec)
    if canonical == "online-model":
        return OnlineModelPolicy(ecc, spec)
    return OraclePolicy(ecc)


@dataclass(frozen=True)
class TournamentConfig:
    """One tournament's grid and sizing."""

    kind: str = "tlc"
    policies: Tuple[str, ...] = POLICY_NAMES
    ages: Tuple[str, ...] = AGE_NAMES
    frontends: Tuple[str, ...] = ("hm_0",)
    cells_per_wordline: int = 8192
    sentinel_ratio: float = 0.02
    wordline_step: int = 8
    requests_per_cell: int = 240
    scale: float = 1.0
    workers: int = 1

    def __post_init__(self) -> None:
        for name in self.policies:
            if name not in POLICY_ALIASES:
                raise ValueError(
                    f"unknown policy {name!r}; "
                    f"use one of {sorted(POLICY_ALIASES)}"
                )
        kind = self.kind.lower()
        if kind not in AGE_STRESSES:
            raise ValueError(f"unknown chip kind {self.kind!r}")
        for age in self.ages:
            cell_stress(kind, age)  # raises on unknown names


@dataclass(frozen=True)
class _CellTask:
    """Everything a worker needs to run one self-contained grid cell."""

    kind: str
    policy: str
    age: str
    frontend: str
    cells_per_wordline: int
    sentinel_ratio: float
    wordline_step: int
    requests_per_cell: int
    scale: float
    seed: int
    model: object = field(repr=False)


def measure_stress_profile(
    task_policy: str,
    kind: str,
    stress: StressState,
    cells_per_wordline: int,
    sentinel_ratio: float,
    wordline_step: int,
    model,
    hint_fn=None,
) -> RetryProfile:
    """Measure one policy's retry profile at an explicit stress point.

    The tournament's :func:`measure_cell_profile` delegates here with its
    named age presets; the lifetime campaign (:mod:`repro.campaign`) calls
    it directly with the composed aging stress of each phase, optionally
    with a cache-hint function for the warm (cache-hit) distribution.
    """
    from repro.exp.common import EVAL_SEED
    from repro.flash.block import BlockColumns

    spec = cell_spec(kind, cells_per_wordline)
    chip = FlashChip(spec, seed=EVAL_SEED, sentinel_ratio=sentinel_ratio)
    chip.set_block_stress(0, stress)
    ecc = CapabilityEcc.for_spec(spec)
    policy = build_policy(task_policy, ecc, spec, chip, model)
    step = max(1, wordline_step)
    if hasattr(policy, "commit_feedback"):
        # train/measure split: learn on same-layer neighbours of the
        # measured wordlines (falling back to the wordline itself when
        # the layer has no other), then freeze the committed state for
        # the measured sweep.  Predictions key on (block, layer), so the
        # warm-up must stay in the measured layers.
        measured = range(0, spec.wordlines_per_block, step)
        picks = []
        for w in measured:
            n = w + 1
            same_layer = (
                n < spec.wordlines_per_block
                and spec.layer_of_wordline(n) == spec.layer_of_wordline(w)
            )
            picks.append(n if same_layer and n % step != 0 else w)
        warmup = list(dict.fromkeys(picks))
        if warmup:
            cols = BlockColumns(
                spec, EVAL_SEED, 0, warmup, sentinel_ratio, stress=stress
            )
            policy.read_batch(cols, list(range(spec.pages_per_wordline)))
            policy.commit_feedback()
    return RetryProfile.measure(
        chip,
        policy,
        wordlines=range(0, spec.wordlines_per_block, step),
        name=POLICY_ALIASES[task_policy],
        hint_fn=hint_fn,
        workers=1,
    )


def measure_cell_profile(
    task_policy: str,
    kind: str,
    age: str,
    cells_per_wordline: int,
    sentinel_ratio: float,
    wordline_step: int,
    model,
) -> RetryProfile:
    """Steps 1-3 of a cell: chip, optional warm-up, profile measurement.

    Public and standalone-callable: the golden differential tests invoke
    it directly to prove the tournament harness adds zero perturbation on
    top of ``RetryProfile.measure``.
    """
    return measure_stress_profile(
        task_policy,
        kind,
        cell_stress(kind, age),
        cells_per_wordline,
        sentinel_ratio,
        wordline_step,
        model,
    )


def replay_cell_frontend(
    frontend: str,
    kind: str,
    cells_per_wordline: int,
    profile: RetryProfile,
    requests: int,
    seed: int,
    scale: float = 1.0,
):
    """Step 4 of a cell: one synthetic frontend through the broker.

    Cold and warm profiles are the same measurement: every policy is
    priced on its own reads, with no separate sentinel-cache-hit
    distribution — the tournament compares *policies*, not cache warmth.
    Public and standalone-callable for the golden differential tests.
    """
    from repro.replay import ReplayConfig, replay_trace
    from repro.service.profiles import COLD, WARM
    from repro.ssd.config import SsdConfig
    from repro.traces.synthetic import MSR_WORKLOADS, generate_workload

    spec = cell_spec(kind, cells_per_wordline)
    trace = generate_workload(
        MSR_WORKLOADS[frontend], n_requests=requests, seed=seed
    )
    ssd_config = SsdConfig.for_spec(
        spec, channels=2, dies_per_channel=2, blocks_per_die=64
    )
    return replay_trace(
        trace,
        spec=spec,
        ssd_config=ssd_config,
        timing=NandTiming(),
        profiles={COLD: profile, WARM: profile},
        seed=seed,
        config=ReplayConfig(scale=scale, workers=1),
    )


def _run_cell(task: _CellTask) -> Dict[str, Any]:
    """One grid cell, start to finish; returns its scorecard dict."""
    profile = measure_cell_profile(
        task.policy,
        task.kind,
        task.age,
        task.cells_per_wordline,
        task.sentinel_ratio,
        task.wordline_step,
        task.model,
    )
    report = replay_cell_frontend(
        task.frontend,
        task.kind,
        task.cells_per_wordline,
        profile,
        task.requests_per_cell,
        task.seed,
        task.scale,
    )
    stress = cell_stress(task.kind, task.age)
    acct = report.accounting
    reads_measured = int(sum(len(v) for v in profile.samples.values()))
    extra_total = sum(int(v[:, 1].sum()) for v in profile.samples.values())
    client = report.service["clients"][task.frontend]
    return {
        "policy": POLICY_ALIASES[task.policy],
        "age": task.age,
        "frontend": task.frontend,
        "kind": task.kind,
        "pe_cycles": stress.pe_cycles,
        "retention_hours": stress.retention_hours,
        "reads_measured": reads_measured,
        "retries_per_read": profile.mean_retries(),
        "extra_per_read": extra_total / reads_measured if reads_measured else 0.0,
        "mean_read_us": profile.mean_read_us(NandTiming()),
        "pipelined": bool(profile.pipelined),
        "offered": int(acct["offered"]),
        "served": int(acct["served"]),
        "degraded": int(acct["degraded"]),
        "shed": int(acct["shed"]),
        "balanced": bool(acct["balanced"]),
        "p99_us": float(client["read_p99_us"]),
        "completed_iops": float(report.completed_iops),
        "profile_sha256": profile_digest(profile),
        "replay_sha256": replay_digest(report),
    }


def _emit_cell_obs(cell: Dict[str, Any]) -> None:
    if not OBS.enabled:
        return
    labels = {
        "policy": cell["policy"],
        "age": cell["age"],
        "frontend": cell["frontend"],
    }
    if OBS.metrics.enabled:
        OBS.metrics.counter(
            "repro_tournament_cells_total",
            help="tournament grid cells completed",
            policy=cell["policy"],
        ).inc()
        OBS.metrics.gauge(
            "repro_tournament_retries_per_read",
            help="measured retries per read of one tournament cell",
            **labels,
        ).set(cell["retries_per_read"])
        OBS.metrics.gauge(
            "repro_tournament_p99_us",
            help="replayed read p99 latency of one tournament cell",
            **labels,
        ).set(cell["p99_us"])
    if OBS.tracer.enabled:
        OBS.tracer.emit(
            "tournament_cell",
            policy=cell["policy"],
            age=cell["age"],
            frontend=cell["frontend"],
            retries_per_read=float(cell["retries_per_read"]),
            p99_us=float(cell["p99_us"]),
            iops=float(cell["completed_iops"]),
            balanced=bool(cell["balanced"]),
        )


def run_tournament(
    config: Optional[TournamentConfig] = None, seed: int = 0
) -> TournamentReport:
    """Race the configured policies over the grid; return the report."""
    cfg = config or TournamentConfig()
    kind = cfg.kind.lower()
    model = tournament_model(kind, cfg.cells_per_wordline, cfg.sentinel_ratio)
    tasks = [
        _CellTask(
            kind=kind,
            policy=policy,
            age=age,
            frontend=frontend,
            cells_per_wordline=cfg.cells_per_wordline,
            sentinel_ratio=cfg.sentinel_ratio,
            wordline_step=cfg.wordline_step,
            requests_per_cell=cfg.requests_per_cell,
            scale=cfg.scale,
            seed=seed,
            model=model,
        )
        for policy in cfg.policies
        for age in cfg.ages
        for frontend in cfg.frontends
    ]
    engine = ParallelMap(workers=cfg.workers)
    cells: List[Dict[str, Any]] = engine.run(
        _run_cell, tasks, label="tournament"
    )
    # sentinel-vs-rival deltas, computed post-merge in canonical order
    sentinel_by: Dict[Tuple[str, str], Dict[str, Any]] = {
        (c["age"], c["frontend"]): c
        for c in cells
        if c["policy"] == "sentinel"
    }
    for c in cells:
        ref = sentinel_by.get((c["age"], c["frontend"]))
        if ref is None:
            continue
        c["vs_sentinel"] = {
            "retries_per_read": c["retries_per_read"] - ref["retries_per_read"],
            "p99_us": c["p99_us"] - ref["p99_us"],
            "completed_iops": c["completed_iops"] - ref["completed_iops"],
        }
    for c in cells:
        _emit_cell_obs(c)
    return TournamentReport(
        kind=kind,
        seed=seed,
        cells_per_wordline=cfg.cells_per_wordline,
        sentinel_ratio=cfg.sentinel_ratio,
        requests_per_cell=cfg.requests_per_cell,
        wordline_step=cfg.wordline_step,
        policies=[POLICY_ALIASES[p] for p in cfg.policies],
        ages=list(cfg.ages),
        frontends=list(cfg.frontends),
        cells=cells,
    )
