"""The campaign report: every device's lifetime, phase by phase.

Deterministic and **worker-count-free**, like the tournament and fleet
reports: every field derives from the virtual-time simulation and the
grid definition, cells merge in canonical (policy, schedule, environment,
workload) order, and ``to_json()`` sorts keys — so the JSON is
byte-identical across ``--workers 1/2/4``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.report import format_table


@dataclass
class CampaignReport:
    """Scorecards of one (policy x schedule x environment x workload)
    lifetime campaign."""

    kind: str
    seed: int
    lifetime_hours: float
    phase_count: int
    cells_per_wordline: int
    sentinel_ratio: float
    requests_per_phase: int
    wordline_step: int
    policies: List[str] = field(default_factory=list)
    schedules: List[str] = field(default_factory=list)
    environments: List[str] = field(default_factory=list)
    workloads: List[str] = field(default_factory=list)
    #: one dict per grid cell, in canonical order, each carrying its
    #: per-phase rows under ``"phases"``
    cells: List[Dict[str, Any]] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def balanced(self) -> bool:
        """Every phase of every cell satisfies
        served + degraded + shed == offered."""
        return all(c.get("balanced", False) for c in self.cells)

    def cell(
        self, policy: str, schedule: str, environment: str, workload: str
    ) -> Optional[Dict[str, Any]]:
        for c in self.cells:
            if (
                c["policy"] == policy
                and c["schedule"] == schedule
                and c["environment"] == environment
                and c["workload"] == workload
            ):
                return c
        return None

    def retries_monotone(self, policy: Optional[str] = None) -> bool:
        """Whether measured cold retries/read strictly increases with age
        in every (matching) cell — the aging sanity floor."""
        checked = 0
        for c in self.cells:
            if policy is not None and c["policy"] != policy:
                continue
            checked += 1
            series = [row["retries_per_read"] for row in c["phases"]]
            if any(b <= a for a, b in zip(series, series[1:])):
                return False
        return checked > 0

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))

    # ------------------------------------------------------------------
    def render(self) -> str:
        lines: List[str] = [
            (
                f"campaign report: {self.kind} x {len(self.policies)} "
                f"policies x {len(self.schedules)} schedules x "
                f"{len(self.environments)} environments x "
                f"{len(self.workloads)} workloads, "
                f"{self.phase_count} phases over "
                f"{self.lifetime_hours:.0f} h (seed {self.seed}, "
                f"{self.cells_per_wordline} cells/wordline, "
                f"{self.requests_per_phase} requests/phase)"
            )
        ]
        rows = []
        for c in self.cells:
            for row in c["phases"]:
                rows.append((
                    c["policy"],
                    c["schedule"],
                    c["environment"],
                    c["workload"],
                    row["phase"],
                    f"{row['age_hours']:.0f}",
                    row["pe_cycles"],
                    f"{row['retries_per_read']:.3f}",
                    f"{row['p99_us']:.0f}",
                    (
                        f"{row['served']}/{row['degraded']}"
                        f"/{row['shed']}"
                    ),
                    "ok" if row.get("balanced") else "IMBALANCED",
                ))
        lines.append(format_table(
            rows,
            headers=["policy", "schedule", "env", "workload", "ph",
                     "age h", "pe", "retries/read", "p99 us",
                     "srv/deg/shed", "acct"],
        ))
        if not self.balanced:
            lines.append("ACCOUNTING IMBALANCED: at least one phase broke "
                         "served + degraded + shed == offered")
        return "\n".join(lines)
