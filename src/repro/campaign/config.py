"""The lifetime-campaign grid: what ages, how fast, and in what weather.

A campaign cell is one device living through ``phases`` aging phases of a
``lifetime_hours`` service life.  The grid crosses:

* **policy** — any tournament read-retry policy (canonical names of
  :data:`repro.tournament.POLICY_ALIASES`);
* **P/E schedule** — a named wear curve mapping phase index to cumulative
  program/erase cycles (:data:`PE_SCHEDULES`, scaled to the kind's
  end-of-life count in :data:`END_PE`);
* **environment** — a named :class:`~repro.faults.plan.FaultPlan` of
  ``env.*`` specs whose windows are read in **hours of device life**
  (:func:`environment_plan`); temperature steps reprice retention through
  the Arrhenius law, power-loss windows drop the volatile voltage cache;
* **workload** — a synthetic MSR frontend replayed through the persistent
  serving broker each phase.

Everything here is pure data + arithmetic: the runner
(:mod:`repro.campaign.runner`) owns all simulation state.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, Tuple

from repro.faults.plan import FaultPlan, FaultSpec
from repro.flash.mechanisms import ROOM_TEMP_C

#: End-of-life cumulative P/E cycles per chip kind — the value every wear
#: schedule reaches at the final phase (the tournament's "old" presets).
END_PE: Dict[str, int] = {"tlc": 5000, "qlc": 1000}

#: Named wear curves: fraction of end-of-life P/E reached at life
#: fraction ``x`` in (0, 1].  Kept as pure shape functions so one schedule
#: serves every kind and phase count.
PE_SCHEDULES: Dict[str, Any] = {
    # constant write pressure over the whole life
    "steady": lambda x: x,
    # read-mostly archive: half the endurance budget ever consumed
    "gentle": lambda x: 0.5 * x,
    # heavy ingest early, then mostly reads — wear front-loaded
    "burn-in": lambda x: math.sqrt(x),
}


def pe_at(schedule: str, phase: int, phases: int, end_pe: int) -> int:
    """Cumulative P/E cycles after ``phase`` of ``phases`` (1-based)."""
    if schedule not in PE_SCHEDULES:
        raise ValueError(
            f"unknown P/E schedule {schedule!r}; "
            f"one of {sorted(PE_SCHEDULES)}"
        )
    if not 1 <= phase <= phases:
        raise ValueError("phase must be in [1, phases]")
    return int(round(end_pe * PE_SCHEDULES[schedule](phase / phases)))


#: Named environments (see :func:`environment_plan`).
ENVIRONMENT_NAMES: Tuple[str, ...] = ("room", "hot", "heat-wave", "outage")


def environment_plan(name: str, lifetime_hours: float) -> FaultPlan:
    """Build the named environment as a :class:`FaultPlan` of ``env.*``
    specs with windows in **hours** of the given device lifetime.

    ``room``
        constant 25 C, no events — the constant-temperature baseline whose
        aging path is bit-identical to plain ``with_retention`` calls.
    ``hot``
        the whole life at 60 C (a poorly cooled enclosure).
    ``heat-wave``
        25 C except a 70 C excursion across the middle fifth of life.
    ``outage``
        25 C with a power-loss window just past mid-life: the volatile
        voltage-offset cache is gone at the next serving phase.
    """
    if lifetime_hours <= 0:
        raise ValueError("lifetime_hours must be positive")
    L = lifetime_hours
    if name == "room":
        return FaultPlan(name="room", specs=())
    if name == "hot":
        return FaultPlan(name="hot", specs=(
            FaultSpec("env.temperature_step", magnitude=60.0),
        ))
    if name == "heat-wave":
        return FaultPlan(name="heat-wave", specs=(
            FaultSpec("env.temperature_step", magnitude=70.0,
                      start_us=0.4 * L, end_us=0.6 * L),
        ))
    if name == "outage":
        return FaultPlan(name="outage", specs=(
            FaultSpec("env.power_loss", start_us=0.5 * L,
                      end_us=0.5 * L + max(1.0, 0.001 * L)),
        ))
    raise ValueError(
        f"unknown environment {name!r}; one of {sorted(ENVIRONMENT_NAMES)}"
    )


def temperature_segments(
    plan: FaultPlan,
    h0: float,
    h1: float,
    base_c: float = ROOM_TEMP_C,
) -> Tuple[Tuple[float, float], ...]:
    """Piecewise-constant ``(hours, temperature_c)`` segments over the
    lifetime interval ``[h0, h1)``.

    ``env.temperature_step`` windows are read in hours; inside a window the
    ambient sits at the spec's magnitude, outside at ``base_c``.  When
    windows overlap, the **last** spec in plan order wins — plans are
    ordered data, so the outcome is deterministic.  An eventless interval
    collapses to one segment at ``base_c``, which keeps the
    constant-temperature aging path bit-identical to a plain
    ``with_retention`` call.
    """
    if h1 < h0:
        raise ValueError("h1 must be >= h0")
    steps = plan.by_kind("env.temperature_step")
    cuts = {h0, h1}
    for spec in steps:
        cuts.add(min(max(spec.start_us, h0), h1))
        if spec.end_us is not None:
            cuts.add(min(max(spec.end_us, h0), h1))
    edges = sorted(cuts)
    segments = []
    for a, b in zip(edges, edges[1:]):
        if b <= a:
            continue
        temp = base_c
        for spec in steps:
            if a >= spec.start_us and (spec.end_us is None or a < spec.end_us):
                temp = spec.strength
        segments.append((b - a, temp))
    return tuple(segments)


def power_loss_count(plan: FaultPlan, h0: float, h1: float) -> int:
    """Power-loss windows intersecting the lifetime interval ``[h0, h1)``."""
    count = 0
    for spec in plan.by_kind("env.power_loss"):
        end = spec.end_us
        if spec.start_us < h1 and (end is None or end > h0):
            count += 1
    return count


@dataclass(frozen=True)
class CampaignConfig:
    """One lifetime campaign's grid and sizing."""

    kind: str = "tlc"
    policies: Tuple[str, ...] = ("sentinel", "current-flash")
    schedules: Tuple[str, ...] = ("steady",)
    environments: Tuple[str, ...] = ("room",)
    workloads: Tuple[str, ...] = ("hm_0",)
    #: aging phases per cell; each ends with one serving window
    phases: int = 4
    #: total device life in hours (default one year)
    lifetime_hours: float = 8760.0
    requests_per_phase: int = 160
    cells_per_wordline: int = 8192
    sentinel_ratio: float = 0.02
    wordline_step: int = 8
    scale: float = 1.0
    #: virtual-time gap between a phase's end and the next phase's first
    #: arrival (the months of aging compress into this quiet window)
    inter_phase_gap_us: float = 200_000.0
    workers: int = 1

    def __post_init__(self) -> None:
        from repro.tournament import POLICY_ALIASES
        from repro.traces.synthetic import MSR_WORKLOADS

        for name in self.policies:
            if name not in POLICY_ALIASES:
                raise ValueError(
                    f"unknown policy {name!r}; "
                    f"use one of {sorted(POLICY_ALIASES)}"
                )
        if self.kind.lower() not in END_PE:
            raise ValueError(f"unknown chip kind {self.kind!r}")
        for name in self.schedules:
            if name not in PE_SCHEDULES:
                raise ValueError(
                    f"unknown P/E schedule {name!r}; "
                    f"one of {sorted(PE_SCHEDULES)}"
                )
        for name in self.environments:
            environment_plan(name, max(self.lifetime_hours, 1.0))
        for name in self.workloads:
            if name not in MSR_WORKLOADS:
                raise ValueError(
                    f"unknown workload {name!r}; "
                    f"one of {sorted(MSR_WORKLOADS)}"
                )
        if self.phases < 1:
            raise ValueError("phases must be positive")
        if self.lifetime_hours <= 0:
            raise ValueError("lifetime_hours must be positive")
        if self.requests_per_phase < 1:
            raise ValueError("requests_per_phase must be positive")
        if self.inter_phase_gap_us <= 0:
            raise ValueError("inter_phase_gap_us must be positive")
        for name in ("policies", "schedules", "environments", "workloads"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        for name in ("policies", "schedules", "environments", "workloads"):
            payload[name] = list(payload[name])
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignConfig":
        """Build a config from a ``--grid`` JSON object (strict keys)."""
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown CampaignConfig fields: {sorted(unknown)}"
            )
        kwargs = dict(data)
        for name in ("policies", "schedules", "environments", "workloads"):
            if kwargs.get(name) is not None:
                kwargs[name] = tuple(str(x) for x in kwargs[name])
        return cls(**kwargs)
