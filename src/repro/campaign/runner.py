"""The lifetime campaign runner: devices aging while they serve.

One **cell** is one device living through the full campaign lifetime
under a (policy x P/E schedule x environment x workload) grid point.
Unlike the tournament — whose cells replay one frozen age preset — a
campaign cell keeps **one persistent serving broker** across every phase,
so the voltage cache, scrubber, circuit breakers, FTL and GC carry their
state forward while the flash underneath drifts:

1. advance the device's :class:`StressState` across the phase's slice of
   lifetime — retention composes piecewise over the environment's
   ``env.temperature_step`` windows (the Arrhenius-equivalent composition
   of ``with_retention``), cumulative P/E comes from the named wear
   schedule, read disturb from the reads the broker actually served;
2. re-measure the cold/warm retry profiles on the aged evaluation block
   and swap them into the broker (``service.profiles``);
3. bump every block's erase baseline (``age_blocks``) so the voltage
   cache's P/E-drift invalidation sees the wear; drop the cache entirely
   when an ``env.power_loss`` window elapsed (volatile state);
4. replay the workload as a fresh open-loop client (``workload#pN``)
   scheduled after the previous phase's horizon — virtual time never
   rewinds — and score the phase from the broker's per-client accounting
   and retry-histogram deltas.

Cells shard over :class:`repro.engine.ParallelMap` and merge in canonical
(policy, schedule, environment, workload) order; all observability
(``campaign_phase`` events, ``repro_campaign_*`` metrics) is emitted
parent-side after the merge, so the :class:`CampaignReport` JSON is
byte-identical at any ``--workers``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.campaign.config import (
    END_PE,
    CampaignConfig,
    environment_plan,
    pe_at,
    power_loss_count,
    temperature_segments,
)
from repro.campaign.report import CampaignReport
from repro.engine import ParallelMap
from repro.flash.mechanisms import StressState
from repro.obs import OBS
from repro.tournament import (
    POLICY_ALIASES,
    cell_spec,
    measure_stress_profile,
    tournament_model,
)

#: policies whose serving path benefits from cached sentinel offsets —
#: their warm profile is measured with the scrubber's hint; every other
#: policy prices cache hits exactly like misses (warm == cold)
HINTED_POLICIES = frozenset({"sentinel", "tracking+sentinel"})


@dataclass(frozen=True)
class _CellTask:
    """Everything a worker needs to run one campaign cell."""

    kind: str
    policy: str
    schedule: str
    environment: str
    workload: str
    phases: int
    lifetime_hours: float
    requests_per_phase: int
    cells_per_wordline: int
    sentinel_ratio: float
    wordline_step: int
    scale: float
    inter_phase_gap_us: float
    seed: int
    model: object = field(repr=False)


def _phase_requests(task: _CellTask, translated, client: str, start_us: float):
    from repro.service.workload import ServiceRequest

    return [
        ServiceRequest(
            client=client,
            index=i,
            is_read=t.is_read,
            lpn=t.lpn,
            n_pages=t.n_pages,
            arrival_us=start_us + t.arrival_us,
        )
        for i, t in enumerate(translated)
    ]


def _run_cell(task: _CellTask) -> Dict[str, Any]:
    """One campaign cell, birth to end of life; returns its scorecard."""
    from repro.replay.translate import LbaTranslator, translate_trace
    from repro.service.broker import FlashReadService
    from repro.service.profiles import COLD, WARM, sentinel_hint_fn
    from repro.ssd.config import SsdConfig
    from repro.ssd.timing import NandTiming
    from repro.traces.synthetic import MSR_WORKLOADS, generate_workload

    canonical = POLICY_ALIASES[task.policy]
    spec = cell_spec(task.kind, task.cells_per_wordline)
    ssd_config = SsdConfig.for_spec(
        spec, channels=2, dies_per_channel=2, blocks_per_die=64
    )
    timing = NandTiming()
    plan = environment_plan(task.environment, task.lifetime_hours)
    hint_fn = (
        sentinel_hint_fn(task.model) if canonical in HINTED_POLICIES else None
    )

    # the workload is translated once; each phase replays the same request
    # stream as a fresh client offset past the previous phase's horizon
    trace = generate_workload(
        MSR_WORKLOADS[task.workload],
        n_requests=task.requests_per_phase,
        seed=task.seed,
    )
    translator = LbaTranslator(
        page_bytes=ssd_config.page_user_bytes,
        max_pages_per_request=8,
        scale=task.scale,
    )
    translated, _stats, _engine = translate_trace(
        trace, translator, workers=1
    )

    end_pe = END_PE[task.kind.lower()]
    stress = StressState()
    read_count = 0
    service: Optional[FlashReadService] = None
    prev_reads = 0
    prev_retries = 0
    phase_rows: List[Dict[str, Any]] = []

    for p in range(1, task.phases + 1):
        h0 = task.lifetime_hours * (p - 1) / task.phases
        h1 = task.lifetime_hours * p / task.phases
        # 1. age: piecewise retention over the environment's temperature
        # windows, then the schedule's cumulative wear and the read
        # disturb the broker actually generated
        for hours, temp_c in temperature_segments(plan, h0, h1):
            stress = stress.with_retention(hours, temperature_c=temp_c)
        pe = pe_at(task.schedule, p, task.phases, end_pe)
        stress = replace(stress, pe_cycles=pe, read_count=read_count)

        # 2. re-measure the drifted retry profiles and swap them in
        cold = measure_stress_profile(
            task.policy, task.kind, stress, task.cells_per_wordline,
            task.sentinel_ratio, task.wordline_step, task.model,
        )
        warm = cold
        if hint_fn is not None:
            warm = measure_stress_profile(
                task.policy, task.kind, stress, task.cells_per_wordline,
                task.sentinel_ratio, task.wordline_step, task.model,
                hint_fn=hint_fn,
            )
        if service is None:
            service = FlashReadService(
                spec, ssd_config, timing, {COLD: cold, WARM: warm},
                seed=task.seed,
            )
        else:
            service.profiles = {COLD: cold, WARM: warm}

        # 3. wear + environment events on the persistent broker: the
        # erase baseline moves (P/E-drift cache invalidation), and an
        # elapsed power-loss window drops the volatile cache outright
        service.age_blocks(pe)
        flushed = 0
        if power_loss_count(plan, h0, h1):
            flushed = service.cache.flush()

        # 4. serve this phase as a fresh open-loop client, strictly
        # after everything already on the virtual clock
        client = f"{task.workload}#p{p}"
        start_us = service.queue.now + task.inter_phase_gap_us
        requests = _phase_requests(task, translated, client, start_us)
        report = service.run_prepared(
            {client: requests},
            scenario=f"campaign:{canonical}:p{p}",
        )

        summary = report.clients[client]
        offered = len(requests)
        completed = int(summary.get("completed", 0))
        degraded = int(summary.get("degraded", 0))
        shed = int(summary.get("shed", 0))
        served = completed - degraded
        hist_reads = sum(service.retry_histogram.values())
        hist_retries = sum(
            k * v for k, v in service.retry_histogram.items()
        )
        phase_reads = hist_reads - prev_reads
        phase_retries = hist_retries - prev_retries
        prev_reads, prev_retries = hist_reads, hist_retries
        read_count += phase_reads

        phase_rows.append({
            "phase": p,
            "age_hours": h1,
            "pe_cycles": pe,
            "retention_hours": stress.retention_hours,
            "temperature_c": stress.temperature_c,
            "read_count": read_count,
            "power_loss_flushed": flushed,
            # the aging signal: the freshly measured cold profile
            "retries_per_read": cold.mean_retries(),
            "warm_retries_per_read": warm.mean_retries(),
            # the served signal: broker histogram deltas (cache-warmed)
            "served_reads": phase_reads,
            "served_retries_per_read": (
                phase_retries / phase_reads if phase_reads else 0.0
            ),
            "offered": offered,
            "served": served,
            "degraded": degraded,
            "shed": shed,
            "balanced": bool(served + degraded + shed == offered),
            "p99_us": float(summary.get("read_p99_us", 0.0)),
        })

    totals = {
        key: sum(int(row[key]) for row in phase_rows)
        for key in ("offered", "served", "degraded", "shed")
    }
    return {
        "policy": canonical,
        "schedule": task.schedule,
        "environment": task.environment,
        "workload": task.workload,
        "kind": task.kind,
        "end_pe": end_pe,
        "phases": phase_rows,
        **totals,
        "balanced": all(row["balanced"] for row in phase_rows),
        "final_retries_per_read": phase_rows[-1]["retries_per_read"],
        "final_p99_us": phase_rows[-1]["p99_us"],
        "cache": service.cache.stats() if service is not None else {},
    }


def _emit_cell_obs(cell: Dict[str, Any]) -> None:
    if not OBS.enabled:
        return
    labels = {
        "policy": cell["policy"],
        "schedule": cell["schedule"],
        "environment": cell["environment"],
        "workload": cell["workload"],
    }
    for row in cell["phases"]:
        if OBS.metrics.enabled:
            OBS.metrics.counter(
                "repro_campaign_phases_total",
                help="lifetime campaign phases served",
                policy=cell["policy"],
            ).inc()
            OBS.metrics.gauge(
                "repro_campaign_retries_per_read",
                help="cold retries/read measured at one campaign phase",
                phase=row["phase"], **labels,
            ).set(row["retries_per_read"])
            OBS.metrics.gauge(
                "repro_campaign_p99_us",
                help="served read p99 latency of one campaign phase",
                phase=row["phase"], **labels,
            ).set(row["p99_us"])
        if OBS.tracer.enabled:
            OBS.tracer.emit(
                "campaign_phase",
                phase=row["phase"],
                age_hours=float(row["age_hours"]),
                pe_cycles=int(row["pe_cycles"]),
                retries_per_read=float(row["retries_per_read"]),
                p99_us=float(row["p99_us"]),
                balanced=bool(row["balanced"]),
                **labels,
            )
    if OBS.metrics.enabled:
        OBS.metrics.counter(
            "repro_campaign_cells_total",
            help="lifetime campaign cells completed",
            policy=cell["policy"],
        ).inc()


def run_campaign(
    config: Optional[CampaignConfig] = None, seed: int = 0
) -> CampaignReport:
    """Age the configured grid through its lifetime; return the report."""
    cfg = config or CampaignConfig()
    kind = cfg.kind.lower()
    model = tournament_model(kind, cfg.cells_per_wordline, cfg.sentinel_ratio)
    tasks = [
        _CellTask(
            kind=kind,
            policy=policy,
            schedule=schedule,
            environment=environment,
            workload=workload,
            phases=cfg.phases,
            lifetime_hours=cfg.lifetime_hours,
            requests_per_phase=cfg.requests_per_phase,
            cells_per_wordline=cfg.cells_per_wordline,
            sentinel_ratio=cfg.sentinel_ratio,
            wordline_step=cfg.wordline_step,
            scale=cfg.scale,
            inter_phase_gap_us=cfg.inter_phase_gap_us,
            seed=seed,
            model=model,
        )
        for policy in cfg.policies
        for schedule in cfg.schedules
        for environment in cfg.environments
        for workload in cfg.workloads
    ]
    engine = ParallelMap(workers=cfg.workers)
    cells: List[Dict[str, Any]] = engine.run(
        _run_cell, tasks, label="campaign"
    )
    for cell in cells:
        _emit_cell_obs(cell)
    return CampaignReport(
        kind=kind,
        seed=seed,
        lifetime_hours=cfg.lifetime_hours,
        phase_count=cfg.phases,
        cells_per_wordline=cfg.cells_per_wordline,
        sentinel_ratio=cfg.sentinel_ratio,
        requests_per_phase=cfg.requests_per_phase,
        wordline_step=cfg.wordline_step,
        policies=[POLICY_ALIASES[p] for p in cfg.policies],
        schedules=list(cfg.schedules),
        environments=list(cfg.environments),
        workloads=list(cfg.workloads),
        cells=cells,
    )
