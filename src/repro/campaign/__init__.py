"""Lifetime scenario campaigns: devices aging **while** they serve.

The tournament (:mod:`repro.tournament`) races policies at frozen age
presets; a campaign instead walks each device through its whole service
life — retention hours, P/E cycles and read disturb accumulate in virtual
time between serving phases, the cold/warm retry profiles are re-measured
on the drifted flash each phase, and the persistent serving broker's
voltage cache, scrubber and breakers react to the drift.  Environment
dynamics (temperature steps repriced through the Arrhenius law,
power-loss windows that drop the volatile cache) come from the same
declarative :class:`~repro.faults.plan.FaultPlan` schema as fault
campaigns, as the inert ``env.*`` kind family read in lifetime hours.

Entry points: :func:`run_campaign` (library), ``python -m repro
campaign`` (CLI; see ``docs/SCENARIOS.md``).
"""

from repro.campaign.config import (
    END_PE,
    ENVIRONMENT_NAMES,
    PE_SCHEDULES,
    CampaignConfig,
    environment_plan,
    pe_at,
    power_loss_count,
    temperature_segments,
)
from repro.campaign.report import CampaignReport
from repro.campaign.runner import HINTED_POLICIES, run_campaign

__all__ = [
    "END_PE",
    "ENVIRONMENT_NAMES",
    "HINTED_POLICIES",
    "PE_SCHEDULES",
    "CampaignConfig",
    "CampaignReport",
    "environment_plan",
    "pe_at",
    "power_loss_count",
    "run_campaign",
    "temperature_segments",
]
