"""Reporting and analysis helpers shared by benchmarks and examples."""

from repro.analysis.report import format_table, print_table
from repro.analysis.ascii_plot import density_plot, line_plot, scatter_plot
from repro.analysis.distributions import (
    estimate_states,
    full_axis_histogram,
    true_state_statistics,
)

__all__ = [
    "format_table",
    "print_table",
    "density_plot",
    "line_plot",
    "scatter_plot",
    "estimate_states",
    "full_axis_histogram",
    "true_state_statistics",
]
