"""Plain-text table rendering for benchmark/example output.

The benchmark harness prints the same rows the paper's tables and figures
report; this module keeps that output aligned and greppable without pulling
in any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.obs.log import echo


def _stringify(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def format_table(
    rows: Iterable[Sequence],
    headers: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Format rows (sequences of cells) as an aligned text table."""
    str_rows: List[List[str]] = [[_stringify(c) for c in row] for row in rows]
    if headers is not None:
        str_rows.insert(0, [str(h) for h in headers])
    if not str_rows:
        return title or ""
    width = max(len(r) for r in str_rows)
    for row in str_rows:
        row.extend([""] * (width - len(row)))
    col_w = [max(len(r[i]) for r in str_rows) for i in range(width)]
    lines = []
    if title:
        lines.append(title)
    for idx, row in enumerate(str_rows):
        lines.append("  ".join(c.ljust(col_w[i]) for i, c in enumerate(row)).rstrip())
        if headers is not None and idx == 0:
            lines.append("  ".join("-" * col_w[i] for i in range(width)))
    return "\n".join(lines)


def print_table(
    rows: Iterable[Sequence],
    headers: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> None:
    """Render a table to the console.

    Routed through :func:`repro.obs.log.echo`: when the CLI has configured
    logging this honors ``--quiet``; standalone callers (examples,
    benchmarks) still get a plain ``print``.
    """
    echo(format_table(rows, headers=headers, title=title))
