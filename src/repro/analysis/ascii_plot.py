"""Terminal plotting: line charts and scatters without any plotting library.

The benchmark harness prints tables; the examples additionally render the
paper's figures as ASCII charts so the shapes are visible in a terminal.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

_GLYPHS = "ox+*#@%&"


def _scale(values: np.ndarray, lo: float, hi: float, cells: int) -> np.ndarray:
    """Map values into integer cell indices [0, cells-1]."""
    if hi <= lo:
        return np.zeros(len(values), dtype=int)
    frac = (np.asarray(values, dtype=float) - lo) / (hi - lo)
    return np.clip((frac * (cells - 1)).round().astype(int), 0, cells - 1)


def line_plot(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    title: Optional[str] = None,
    logy: bool = False,
) -> str:
    """Render one or more y-series over a shared x-axis."""
    x = np.asarray(x, dtype=float)
    data = {}
    for name, ys in series.items():
        ys = np.asarray(ys, dtype=float)
        if len(ys) != len(x):
            raise ValueError(f"series {name!r} length mismatch")
        data[name] = np.log10(np.maximum(ys, 1e-12)) if logy else ys
    lo = min(float(np.nanmin(v)) for v in data.values())
    hi = max(float(np.nanmax(v)) for v in data.values())
    grid = [[" "] * width for _ in range(height)]
    cols = _scale(x, float(x.min()), float(x.max()), width)
    for gi, (name, ys) in enumerate(data.items()):
        rows = _scale(ys, lo, hi, height)
        glyph = _GLYPHS[gi % len(_GLYPHS)]
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = glyph
    lines = []
    if title:
        lines.append(title)
    top = 10**hi if logy else hi
    bottom = 10**lo if logy else lo
    lines.append(f"{top:10.3g} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{bottom:10.3g} +" + "-" * width + "+")
    lines.append(
        " " * 12 + f"{x.min():<10.4g}" + " " * max(width - 20, 1) + f"{x.max():>10.4g}"
    )
    legend = "   ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]} {name}" for i, name in enumerate(data)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 48,
    title: Optional[str] = None,
) -> str:
    """Render a horizontal bar chart (e.g. the retry-count histogram)."""
    if len(labels) != len(values):
        raise ValueError("labels and values length mismatch")
    if len(labels) == 0:
        # an explicit row, not an empty string: a silently blank chart
        # reads as a rendering bug rather than an empty dataset
        return f"{title}\n(no samples)" if title else "(no samples)"
    vals = np.asarray(values, dtype=float)
    finite = vals[np.isfinite(vals)]
    peak = float(finite.max()) if finite.size and float(finite.max()) > 0 \
        else 1.0
    label_w = max(len(str(lab)) for lab in labels)
    lines = []
    if title:
        lines.append(title)
    for lab, v in zip(labels, vals):
        # non-finite values get a zero-length bar but keep their row, so
        # a NaN bucket is visible instead of crashing the whole chart
        frac = v / peak if np.isfinite(v) else 0.0
        bar = "#" * int(round(frac * width))
        lines.append(f"{str(lab):>{label_w}} |{bar} {v:g}")
    return "\n".join(lines)


def scatter_plot(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 64,
    height: int = 20,
    title: Optional[str] = None,
    glyph: str = ".",
) -> str:
    """Render an (x, y) point cloud (e.g. the Figure 7 error map)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) != len(y):
        raise ValueError("x and y length mismatch")
    if len(x) == 0:
        return title or ""
    grid = [[" "] * width for _ in range(height)]
    cols = _scale(x, float(x.min()), float(x.max()), width)
    rows = _scale(y, float(y.min()), float(y.max()), height)
    for c, r in zip(cols, rows):
        grid[height - 1 - r][c] = glyph
    lines = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * width + "+")
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)


def density_plot(
    x: Sequence[float],
    y: Sequence[float],
    width: int = 64,
    height: int = 20,
    title: Optional[str] = None,
) -> str:
    """Scatter with density shading (darker glyph = more points)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if len(x) == 0:
        return title or ""
    counts = np.zeros((height, width), dtype=int)
    cols = _scale(x, float(x.min()), float(x.max()), width)
    rows = _scale(y, float(y.min()), float(y.max()), height)
    for c, r in zip(cols, rows):
        counts[height - 1 - r][c] += 1
    shades = " .:-=+*#%@"
    peak = counts.max() or 1
    lines = []
    if title:
        lines.append(title)
    lines.append("+" + "-" * width + "+")
    for row in counts:
        level = (row / peak * (len(shades) - 1)).astype(int)
        lines.append("|" + "".join(shades[v] for v in level) + "|")
    lines.append("+" + "-" * width + "+")
    return "\n".join(lines)
