"""Vth-distribution estimation from read sweeps (characterization tooling).

A controller cannot observe cell voltages; everything it knows comes from
read sweeps.  This module turns a full-axis sweep into the quantities a
characterization engineer works with: the cell-density histogram, the state
peaks, the valleys between them, and per-state mean/width estimates — the
measured counterpart of the ground-truth model parameters in
:mod:`repro.flash.mechanisms`.

Used by the distribution-explorer tooling and validated against the model's
true state statistics in ``tests/test_distributions.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.flash.wordline import Wordline


@dataclass(frozen=True)
class AxisHistogram:
    """Cell density along the whole Vth axis, measured by a read sweep."""

    positions: np.ndarray  # sweep thresholds (absolute DAC steps)
    counts: np.ndarray  # cells between consecutive thresholds
    reads_used: int

    @property
    def centers(self) -> np.ndarray:
        return (self.positions[:-1] + self.positions[1:]) / 2.0


@dataclass(frozen=True)
class StateEstimate:
    """Moment estimate of one state's distribution from its histogram span."""

    index: int
    mean: float
    sigma: float
    cells: int


def full_axis_histogram(
    wordline: Wordline,
    step: int = 8,
    margin: float = 3.5,
    rng: Optional[np.random.Generator] = None,
) -> AxisHistogram:
    """Sweep the entire Vth axis with single-voltage reads."""
    spec = wordline.spec
    lo = float(spec.state_centers[0]) - margin * spec.sigma_erase
    hi = float(spec.state_centers[-1]) + margin * spec.sigma_prog
    positions = np.arange(lo, hi + step, step)
    cumulative = np.empty(len(positions), dtype=np.int64)
    for i, pos in enumerate(positions):
        above = wordline.single_voltage_read(pos, rng)
        cumulative[i] = wordline.n_cells - int(above.sum())
    counts = np.diff(cumulative)
    np.clip(counts, 0, None, out=counts)
    return AxisHistogram(
        positions=positions, counts=counts, reads_used=len(positions)
    )


def find_state_peaks(
    histogram: AxisHistogram, n_states: int, smooth: int = 5
) -> np.ndarray:
    """Positions of the ``n_states`` tallest separated density peaks."""
    counts = histogram.counts.astype(np.float64)
    if smooth > 1:
        counts = np.convolve(counts, np.ones(smooth) / smooth, mode="same")
    centers = histogram.centers
    # local maxima
    local = np.nonzero(
        (counts[1:-1] >= counts[:-2]) & (counts[1:-1] >= counts[2:])
    )[0] + 1
    if len(local) < n_states:
        raise ValueError(
            f"found only {len(local)} density peaks, expected {n_states}"
        )
    # greedily keep the tallest peaks with a minimum separation
    min_separation = (centers[-1] - centers[0]) / (2.5 * n_states)
    chosen: List[int] = []
    for idx in sorted(local, key=lambda i: -counts[i]):
        if all(abs(centers[idx] - centers[j]) > min_separation for j in chosen):
            chosen.append(idx)
        if len(chosen) == n_states:
            break
    if len(chosen) < n_states:
        raise ValueError("could not separate the expected number of peaks")
    return np.sort(centers[np.array(chosen)])


def estimate_states(
    wordline: Wordline,
    step: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[List[StateEstimate], AxisHistogram]:
    """Estimate every state's mean and width from one full-axis sweep.

    States are delimited at the density minima between adjacent peaks, then
    each segment's weighted moments give (mean, sigma) — exactly what a
    characterization flow extracts from silicon.
    """
    spec = wordline.spec
    histogram = full_axis_histogram(wordline, step=step, rng=rng)
    peaks = find_state_peaks(histogram, spec.n_states)
    centers = histogram.centers
    counts = histogram.counts.astype(np.float64)

    # valleys between consecutive peaks bound each state's segment
    boundaries = [centers[0] - 1.0]
    for left, right in zip(peaks[:-1], peaks[1:]):
        mask = (centers > left) & (centers < right)
        segment = np.nonzero(mask)[0]
        valley = segment[np.argmin(counts[segment])]
        boundaries.append(float(centers[valley]))
    boundaries.append(centers[-1] + 1.0)

    estimates = []
    for s in range(spec.n_states):
        mask = (centers >= boundaries[s]) & (centers < boundaries[s + 1])
        w = counts[mask]
        x = centers[mask]
        total = w.sum()
        if total <= 0:
            estimates.append(StateEstimate(index=s, mean=float(peaks[s]),
                                           sigma=0.0, cells=0))
            continue
        mean = float((w * x).sum() / total)
        var = float((w * (x - mean) ** 2).sum() / total)
        estimates.append(
            StateEstimate(
                index=s, mean=mean, sigma=float(np.sqrt(max(var, 0.0))),
                cells=int(total),
            )
        )
    return estimates, histogram


def true_state_statistics(wordline: Wordline) -> List[StateEstimate]:
    """Ground-truth per-state statistics from the model's cell voltages
    (for validating the estimators; a real controller never sees this)."""
    out = []
    for s in range(wordline.spec.n_states):
        values = wordline.vth[wordline.states == s]
        out.append(
            StateEstimate(
                index=s,
                mean=float(values.mean()) if len(values) else 0.0,
                sigma=float(values.std()) if len(values) else 0.0,
                cells=len(values),
            )
        )
    return out
