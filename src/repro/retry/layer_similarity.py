"""Layer-similarity baseline (Shim et al., MICRO'19).

3D flash wordlines within one layer share process characteristics, so one
tracked optimum per *layer* (instead of per block) captures most of the
variation.  The FTL must store per-layer tables and still pay the initial
search cost per layer; accuracy sits between whole-block tracking and the
per-wordline sentinel inference.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.ecc.capability import CapabilityEcc
from repro.flash.chip import FlashChip
from repro.flash.optimal import optimal_offsets
from repro.flash.wordline import Wordline
from repro.retry.current_flash import RetryTable
from repro.retry.policy import ReadOutcome, ReadPolicy


class LayerSimilarityPolicy(ReadPolicy):
    """First attempt at the layer's tracked offsets, then the retry table."""

    name = "layer-similarity"

    def __init__(
        self,
        ecc: CapabilityEcc,
        chip: FlashChip,
        table: Optional[RetryTable] = None,
        max_retries: int = 10,
    ) -> None:
        super().__init__(ecc, max_retries)
        self.chip = chip
        self.table = table or RetryTable.vendor_default(chip.spec)
        self._tracked: Dict[tuple, np.ndarray] = {}

    def tracked_offsets(self, block: int, layer: int) -> np.ndarray:
        """Tracked optima of one layer (first wordline of the layer)."""
        key = (block, layer, self.chip.block_stress(block).key())
        if key not in self._tracked:
            sample_index = layer * self.chip.spec.wordlines_per_layer
            sample = self.chip.wordline(block, sample_index)
            self._tracked[key] = optimal_offsets(sample)
        return self._tracked[key]

    def read(
        self,
        wordline: Wordline,
        page: Union[int, str],
        rng: Optional[np.random.Generator] = None,
        hint: Optional[float] = None,
    ) -> ReadOutcome:
        # hint ignored: the per-layer tracked table plays the same role
        outcome = self.new_outcome(wordline, page)
        tracked = self.tracked_offsets(wordline.block, wordline.layer)
        if self.attempt(wordline, outcome, tracked, rng):
            return outcome
        for k in range(min(self.max_retries - 1, len(self.table))):
            if self.attempt(wordline, outcome, self.table.entry(k), rng):
                return outcome
        return outcome
