"""Common interface of all read policies.

A *read policy* drives a page read to ECC success: it decides which voltage
offsets every attempt uses and when to give up.  The outcome records enough
accounting (full-page senses, auxiliary single-voltage senses, transfers) for
the NAND timing model to price the whole operation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.ecc.capability import CapabilityEcc
from repro.faults import FAULTS
from repro.flash.wordline import Wordline, make_offsets
from repro.obs import OBS


@dataclass(frozen=True)
class ReadAttempt:
    """One full page read attempt."""

    offsets: np.ndarray
    rber: float
    decoded: bool


@dataclass
class ReadOutcome:
    """Accounting of a complete page-read operation.

    ``retries`` counts full page re-reads after the initial attempt — the
    quantity of Figure 13.  ``extra_single_reads`` counts auxiliary
    one-voltage senses (the sentinel read of Section III-B and the
    state-change comparison reads of Section III-C), which are much cheaper
    than retries because sensing latency is proportional to the number of
    read voltages applied.  ``soft_decoded`` records the sensing mode of a
    last-resort soft decode, if one rescued the read.
    """

    page: int
    page_voltages: int  # voltages applied per full read of this page
    success: bool = False
    retries: int = 0
    extra_single_reads: int = 0
    calibration_steps: int = 0
    soft_decoded: Optional[str] = None
    #: retry rounds whose array sensing was issued speculatively during the
    #: previous round's transfer + ECC (Park et al., arXiv 2104.09611): the
    #: timing model overlaps those senses with the channel instead of
    #: serializing them.  0 for non-pipelined policies.
    pipelined_senses: int = 0
    attempts: List[ReadAttempt] = field(default_factory=list)

    @property
    def initial_rber(self) -> float:
        return self.attempts[0].rber if self.attempts else float("nan")

    @property
    def final_rber(self) -> float:
        return self.attempts[-1].rber if self.attempts else float("nan")

    @property
    def final_offsets(self) -> np.ndarray:
        return self.attempts[-1].offsets if self.attempts else np.zeros(0)

    @property
    def total_full_reads(self) -> int:
        return 1 + self.retries

    @property
    def total_voltage_senses(self) -> int:
        """Total sensing passes, the unit the latency model charges."""
        senses = self.total_full_reads * self.page_voltages + self.extra_single_reads
        if self.soft_decoded is not None:
            # a soft decode re-senses the page with extra reference reads
            # per voltage (3 for 2-bit, 7 for 3-bit sensing)
            per_voltage = {"soft2": 3, "soft3": 7}[self.soft_decoded]
            senses += self.page_voltages * per_voltage
        return senses


class ReadPolicy(ABC):
    """Drives page reads to ECC success under some retry strategy."""

    #: human-readable policy name used in reports
    name: str = "abstract"

    def __init__(self, ecc: CapabilityEcc, max_retries: int = 10) -> None:
        self.ecc = ecc
        self.max_retries = max_retries

    # ------------------------------------------------------------------
    def attempt(
        self,
        wordline: Wordline,
        outcome: ReadOutcome,
        offsets,
        rng: Optional[np.random.Generator] = None,
    ) -> bool:
        """Perform one full read, record it, and return decode success."""
        dense = make_offsets(wordline.spec, offsets)
        result = wordline.read_page(outcome.page, dense, rng)
        decoded = self.ecc.decode_ok(result)
        if FAULTS.active:
            decoded = FAULTS.injector.ecc_verdict(
                wordline.block, wordline.index, decoded
            )
        outcome.attempts.append(
            ReadAttempt(offsets=dense, rber=result.rber, decoded=decoded)
        )
        if len(outcome.attempts) > 1:
            outcome.retries += 1
        outcome.success = decoded
        if OBS.enabled:
            if OBS.metrics.enabled:
                OBS.metrics.counter(
                    "repro_read_attempts_total",
                    help="full page read attempts (initial + retries)",
                    policy=self.name,
                ).inc()
            if OBS.tracer.enabled:
                OBS.tracer.emit(
                    "read_attempt",
                    policy=self.name,
                    page=outcome.page,
                    attempt=len(outcome.attempts),
                    rber=float(result.rber),
                    decoded=bool(decoded),
                )
        return decoded

    def new_outcome(self, wordline: Wordline, page: Union[int, str]) -> ReadOutcome:
        p = wordline.spec.gray.page_index(page)
        if OBS.enabled and OBS.metrics.enabled:
            OBS.metrics.counter(
                "repro_reads_total",
                help="page-read operations started",
                policy=self.name,
            ).inc()
        return ReadOutcome(
            page=p, page_voltages=len(wordline.spec.gray.page_voltages(p))
        )

    def soft_rescue(
        self,
        wordline: Wordline,
        outcome: ReadOutcome,
        rng: Optional[np.random.Generator] = None,
        modes: Sequence[str] = ("soft2", "soft3"),
    ) -> bool:
        """Last resort after retry exhaustion: soft-sensing decode.

        Re-senses the page at the best offsets seen so far with 2-bit and
        then 3-bit soft sensing; the extra reference reads raise the ECC
        capability (the Figure 19 effect).  Returns True if a soft mode
        decoded; the cost is recorded in ``outcome.soft_decoded``.
        """
        if outcome.success or not outcome.attempts:
            return outcome.success
        best = min(outcome.attempts, key=lambda a: a.rber)
        result = wordline.read_page(outcome.page, best.offsets, rng)
        for mode in modes:
            if self.ecc.with_mode(mode).decode_ok(result):
                outcome.soft_decoded = mode
                outcome.success = True
                return True
        return False

    # ------------------------------------------------------------------
    def read_batch(
        self,
        cols,
        pages: Sequence[Union[int, str]],
        hints: Optional[Sequence[Optional[float]]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> List[List[ReadOutcome]]:
        """Read ``pages`` of every wordline of a columnar batch.

        ``cols`` is a :class:`repro.flash.block.BlockColumns`; the return
        value is ``outcomes[row][page_position]``.  The base implementation
        loops wordline views in row order — bit-identical to per-wordline
        reads by construction, and still faster than materializing
        wordlines because the batch was synthesized in one kernel.
        Policies whose retry ladder is data-independent (the vendor table)
        override this with lockstep batched kernels.
        """
        out: List[List[ReadOutcome]] = []
        for row in range(cols.n_wordlines):
            wl = cols.wordline_view(row)
            hint = hints[row] if hints is not None else None
            out.append([self.read(wl, p, rng=rng, hint=hint) for p in pages])
        return out

    def _flush_batch_obs(self, outcomes: List[List[ReadOutcome]]) -> None:
        """Emit the per-read obs a lockstep batch deferred, in row order.

        Lockstep batched reads process attempts page-major across rows, so
        they must not emit through :meth:`attempt` (the event order would
        depend on batching).  Instead they record silently and this helper
        replays the exact per-read stream — ``repro_reads_total`` /
        ``repro_read_attempts_total`` increments and one ``read_attempt``
        event per attempt — in canonical (row, page, attempt) order.
        """
        if not OBS.enabled:
            return
        for row in outcomes:
            for outcome in row:
                if OBS.metrics.enabled:
                    OBS.metrics.counter(
                        "repro_reads_total",
                        help="page-read operations started",
                        policy=self.name,
                    ).inc()
                for k, att in enumerate(outcome.attempts):
                    if OBS.metrics.enabled:
                        OBS.metrics.counter(
                            "repro_read_attempts_total",
                            help="full page read attempts (initial + retries)",
                            policy=self.name,
                        ).inc()
                    if OBS.tracer.enabled:
                        OBS.tracer.emit(
                            "read_attempt",
                            policy=self.name,
                            page=outcome.page,
                            attempt=k + 1,
                            rber=float(att.rber),
                            decoded=bool(att.decoded),
                        )

    # ------------------------------------------------------------------
    @abstractmethod
    def read(
        self,
        wordline: Wordline,
        page: Union[int, str],
        rng: Optional[np.random.Generator] = None,
        hint: Optional[float] = None,
    ) -> ReadOutcome:
        """Read a page to completion (success or retry exhaustion).

        ``hint`` is an optional cached sentinel-voltage offset (in voltage
        steps) from an earlier read of the same block/layer — e.g. from a
        :class:`repro.service.voltage_cache.VoltageOffsetCache`.  Policies
        that know how to derive per-voltage offsets from it (the sentinel
        controller) start their first attempt there instead of at the
        default voltages; others ignore it.
        """
