"""Combination of tracking and the sentinel inference (Related Work).

The paper notes its method "can be well combined with previous work: read
operations can start with the tracked optimal read voltages to reduce the
failure rate of the first read operation, and our sentinel based prediction
is applied once there is a read failure."  This policy implements exactly
that: the first attempt uses the block's tracked offsets; on failure the
sentinel machinery takes over (measuring the error difference at the
*tracked* sentinel position, since that is what the failed read applied).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.ecc.capability import CapabilityEcc

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.calibration import CalibrationConfig
    from repro.core.models import SentinelModel
from repro.flash.chip import FlashChip
from repro.flash.optimal import optimal_offsets
from repro.flash.wordline import Wordline
from repro.retry.policy import ReadOutcome, ReadPolicy


class TrackedSentinelPolicy(ReadPolicy):
    """Tracked first attempt, sentinel inference on failure."""

    name = "tracking+sentinel"

    def __init__(
        self,
        ecc: CapabilityEcc,
        chip: FlashChip,
        model: "SentinelModel",
        sample_wordline: int = 0,
        calibration: "Optional[CalibrationConfig]" = None,
        max_retries: int = 10,
    ) -> None:
        from repro.core.controller import SentinelController

        super().__init__(ecc, max_retries)
        self.chip = chip
        self.sample_wordline = sample_wordline
        self._tracked: dict = {}
        # delegate the post-failure flow to the sentinel controller, but
        # skip its own default first attempt
        self._sentinel = SentinelController(
            ecc, model, calibration=calibration, max_retries=max_retries
        )
        self.model = model

    def tracked_offsets(self, block: int) -> np.ndarray:
        key = (block, self.chip.block_stress(block).key())
        if key not in self._tracked:
            sample = self.chip.wordline(block, self.sample_wordline)
            self._tracked[key] = optimal_offsets(sample)
        return self._tracked[key]

    def read(
        self,
        wordline: Wordline,
        page: Union[int, str],
        rng: Optional[np.random.Generator] = None,
        hint: Optional[float] = None,
    ) -> ReadOutcome:
        # hint ignored: tracking already supplies the first-attempt voltages
        spec = wordline.spec
        outcome = self.new_outcome(wordline, page)
        tracked = self.tracked_offsets(wordline.block)
        if self.attempt(wordline, outcome, tracked, rng):
            return outcome

        # sentinel takeover: measure the error difference at the position
        # the failed read actually applied (the tracked sentinel voltage)
        sentinel_page = spec.gray.voltage_to_page(spec.sentinel_voltage)
        if outcome.page != sentinel_page:
            outcome.extra_single_reads += 1
        tracked_sent = float(tracked[spec.sentinel_voltage - 1])
        readout = wordline.sentinel_readout(tracked_sent, rng)
        # f(d) estimates (optimum - reading position): fitted at the default
        # position, but the error difference depends (to first order) only
        # on the distance to the optimum, so the same map applies relative
        # to the tracked position.  Clamped: a noisy reading must not move
        # the voltage by more than half a state pitch on top of tracking.
        correction = float(
            np.round(self.model.infer_sentinel_offset(readout.difference_rate))
        )
        correction = float(np.clip(correction, -spec.state_pitch / 2,
                                   spec.state_pitch / 2))
        sentinel_offset = tracked_sent + correction
        temperature = wordline.stress.temperature_c
        offsets = self.model.offsets_from_sentinel(sentinel_offset, temperature)
        if self.attempt(wordline, outcome, offsets, rng):
            return outcome

        # hand the rest to the standard sentinel flow (fresh inference from
        # the default position plus calibration/fallback)
        tail = self._sentinel.read(wordline, page, rng)
        outcome.retries += tail.retries + 1  # tail includes its own default read
        outcome.extra_single_reads += tail.extra_single_reads
        outcome.calibration_steps += tail.calibration_steps
        outcome.attempts.extend(tail.attempts)
        outcome.success = tail.success
        return outcome
