"""Adaptive + pipelined read-retry (Park et al., arXiv 2104.09611).

Implements the two firmware-only techniques of "Reducing Solid-State Drive
Read Latency by Optimizing Read-Retry" as a :class:`ReadPolicy` drop-in:

* **Adaptive read-retry** — the controller remembers, per (block, layer),
  which vendor-table entry recently decoded, and starts the next retry walk
  there instead of at the default voltages.  The walk expands around the
  predicted entry (``s, s+1, s-1, s+2, ...``) so a slightly stale
  prediction costs one step, not a full ladder.  A sentinel-cache ``hint``
  (the warm path) maps to the table entry whose sentinel-voltage component
  is nearest, so hinted reads also skip the cold prefix of the ladder.

* **Pipelined read-retry with early termination** — while one attempt's
  data is on the channel being ECC-checked, the die already senses the
  next ladder entry speculatively.  The latency model accounts this by
  marking every retry round in :attr:`ReadOutcome.pipelined_senses`; the
  timing layer then overlaps each retry's sensing with the previous
  round's transfer (``max`` instead of sum — see
  :meth:`NandTiming.read_us`).  Once an attempt decodes, the walk ends and
  the in-flight speculative sense is discarded; decodes that clear the
  configured ECC margin feed the ladder-start predictor, thin-margin
  decodes predict one entry deeper (the optimum is drifting past the
  entry that barely worked).

Determinism contract: predictions are **frozen while reads are in
flight** — both :meth:`read` and the lockstep :meth:`read_batch` queue
decode feedback and only fold it into the per-(block, layer) start table
when the caller invokes :meth:`commit_feedback` (an FTL would do this from
its background task).  This keeps the batched and per-wordline paths
bit-identical and keeps sharded measurements worker-count-invariant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.ecc.capability import CapabilityEcc
from repro.flash.spec import FlashSpec
from repro.flash.wordline import Wordline
from repro.retry.current_flash import RetryTable
from repro.retry.policy import ReadAttempt, ReadOutcome, ReadPolicy

#: feedback key: (block, layer)
_Key = Tuple[int, int]


class AdaptiveRetryPolicy(ReadPolicy):
    """Vendor ladder with a learned per-(block, layer) starting entry."""

    name = "adaptive-retry"
    #: retries overlap sensing with the previous round's transfer + ECC
    pipelined = True

    def __init__(
        self,
        ecc: CapabilityEcc,
        spec: FlashSpec,
        table: Optional[RetryTable] = None,
        max_retries: int = 10,
        history: int = 8,
        margin_fraction: float = 0.75,
    ) -> None:
        super().__init__(ecc, max_retries)
        self.spec = spec
        self.table = table or RetryTable.vendor_default(spec)
        self.history = max(1, history)
        self.margin_fraction = margin_fraction
        #: committed ladder-start per (block, layer); None = cold walk
        self._starts: Dict[_Key, int] = {}
        #: decode feedback queued since the last commit, in read order
        self._pending: Dict[_Key, List[int]] = {}

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def _start_from_hint(self, hint: float) -> int:
        """Ladder entry whose sentinel-voltage offset is nearest the hint."""
        sv = self.spec.sentinel_voltage - 1
        column = self.table.entries[:, sv]
        return int(np.argmin(np.abs(column - float(hint))))

    def _start_for(self, key: _Key, hint: Optional[float]) -> Optional[int]:
        if hint is not None:
            return self._start_from_hint(hint)
        return self._starts.get(key)

    def _schedule(self, start: Optional[int]) -> List[int]:
        """Ladder-entry sequence of one read; index ``-1`` is the default
        (zero-offset) read.  Cold reads walk the vendor ladder from the
        top; predicted reads expand around the start entry."""
        n = len(self.table)
        cap = self.max_retries + 1
        if start is None:
            return ([-1] + list(range(n)))[:cap]
        idxs: List[int] = []
        for d in range(0, n + 2):
            steps = (start,) if d == 0 else (start + d, start - d)
            for k in steps:
                if -1 <= k < n and k not in idxs:
                    idxs.append(k)
            if len(idxs) >= cap:
                break
        return idxs[:cap]

    def _offsets_of(self, entry: int) -> Optional[np.ndarray]:
        return None if entry < 0 else self.table.entry(entry)

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def _margin_clears(self, rber: float) -> bool:
        return rber <= self.margin_fraction * self.ecc.effective_rber

    def _note_feedback(
        self, key: _Key, success_entry: Optional[int], outcome: ReadOutcome
    ) -> None:
        if not outcome.success:
            # the whole ladder failed: predict the deep end next time
            self._pending.setdefault(key, []).append(len(self.table) - 1)
            return
        entry = success_entry if success_entry is not None else -1
        if not self._margin_clears(outcome.attempts[-1].rber):
            # barely decoded: the optimum is drifting past this entry
            entry = min(entry + 1, len(self.table) - 1)
        self._pending.setdefault(key, []).append(entry)

    def commit_feedback(self) -> None:
        """Fold queued decode feedback into the ladder-start table.

        The committed start of a key is the rounded mean of its most
        recent ``history`` outcomes; a negative mean (default reads keep
        decoding) clears the prediction back to the cold walk.  Feedback
        queued inside :class:`repro.engine.ParallelMap` worker processes
        dies with the worker — commit boundaries belong to the caller.
        """
        for key, entries in self._pending.items():
            window = entries[-self.history:]
            start = int(round(float(np.mean(window))))
            if start < 0:
                self._starts.pop(key, None)
            else:
                self._starts[key] = min(start, len(self.table) - 1)
        self._pending.clear()

    # ------------------------------------------------------------------
    # read paths
    # ------------------------------------------------------------------
    def read(
        self,
        wordline: Wordline,
        page: Union[int, str],
        rng: Optional[np.random.Generator] = None,
        hint: Optional[float] = None,
    ) -> ReadOutcome:
        outcome = self.new_outcome(wordline, page)
        key = (wordline.block, wordline.layer)
        success_entry: Optional[int] = None
        for entry in self._schedule(self._start_for(key, hint)):
            if self.attempt(wordline, outcome, self._offsets_of(entry), rng):
                success_entry = entry
                break
        outcome.pipelined_senses = outcome.retries
        self._note_feedback(key, success_entry, outcome)
        return outcome

    def read_batch(self, cols, pages, hints=None, rng=None):
        """Lockstep batched read over the ladder schedules.

        Predictions are frozen for the whole batch (the same contract the
        serial path follows between commits), so each row's attempt
        sequence is a pure function of its (block, layer) key and hint —
        wave ``k`` senses exactly the attempts the serial loop would make,
        with per-row offset matrices carrying rows that sit at different
        ladder entries.  Falls back to the per-row loop when a shared
        ``rng`` or an active fault plan makes cross-row order observable.
        """
        from repro.faults import FAULTS

        if rng is not None or FAULTS.active:
            return super().read_batch(cols, pages, hints, rng)
        spec = cols.spec
        gray = spec.gray
        n_rows = cols.n_wordlines
        keys: List[_Key] = []
        schedules: List[List[int]] = []
        for r in range(n_rows):
            key = (cols.block, spec.layer_of_wordline(cols.indices[r]))
            keys.append(key)
            hint = hints[r] if hints is not None else None
            schedules.append(self._schedule(self._start_for(key, hint)))
        n_v = len(self.table.entries[0])
        outcomes: List[List[ReadOutcome]] = [
            [None] * len(pages) for _ in range(n_rows)
        ]
        success_entries: List[List[Optional[int]]] = [
            [None] * len(pages) for _ in range(n_rows)
        ]
        for j, page in enumerate(pages):
            p = gray.page_index(page)
            n_pv = len(gray.page_voltages(p))
            outs = [
                ReadOutcome(page=p, page_voltages=n_pv) for _ in range(n_rows)
            ]
            for r in range(n_rows):
                outcomes[r][j] = outs[r]
            active = list(range(n_rows))
            wave = 0
            while active:
                rows = [r for r in active if wave < len(schedules[r])]
                if not rows:
                    break
                matrix = np.zeros((len(rows), n_v), dtype=np.float64)
                for i, r in enumerate(rows):
                    entry = schedules[r][wave]
                    if entry >= 0:
                        matrix[i] = self.table.entry(entry)
                batch = cols.read_page_batch(p, matrix, rows=rows)
                decoded = self.ecc.decode_ok_batch(batch.mismatch)
                still_failing = []
                for i, r in enumerate(rows):
                    out = outs[r]
                    out.attempts.append(
                        ReadAttempt(
                            offsets=matrix[i],
                            rber=float(batch.rber[i]),
                            decoded=bool(decoded[i]),
                        )
                    )
                    if len(out.attempts) > 1:
                        out.retries += 1
                    out.success = bool(decoded[i])
                    if out.success:
                        success_entries[r][j] = schedules[r][wave]
                    else:
                        still_failing.append(r)
                active = still_failing
                wave += 1
        # feedback in canonical (row, page) order — the serial read order
        for r in range(n_rows):
            for j in range(len(pages)):
                out = outcomes[r][j]
                out.pipelined_senses = out.retries
                self._note_feedback(keys[r], success_entries[r][j], out)
        self._flush_batch_obs(outcomes)
        return outcomes
