"""Tracking baseline (Cai et al., HPCA'15).

Periodically measure the optimal read voltages of one *sampled* wordline per
block and use them for every wordline of the block.  Works on planar flash,
but on 3D flash the optimal voltages differ strongly between wordlines
(Figure 7's stripes), so tracked voltages help some wordlines and hurt others
— the effect Figure 18 shows.

The tracked offsets are refreshed from the sampled wordline at the block's
*current* stress, i.e. we grant the baseline a perfectly fresh update (the
paper notes the real cost of those updates is prohibitive; we only need its
best-case accuracy).
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from repro.ecc.capability import CapabilityEcc
from repro.flash.chip import FlashChip
from repro.flash.optimal import optimal_offsets
from repro.flash.wordline import Wordline
from repro.retry.current_flash import CurrentFlashPolicy, RetryTable
from repro.retry.policy import ReadOutcome, ReadPolicy


class TrackingPolicy(ReadPolicy):
    """First attempt at the block's tracked offsets, then the retry table."""

    name = "tracking"

    def __init__(
        self,
        ecc: CapabilityEcc,
        chip: FlashChip,
        sample_wordline: int = 0,
        table: Optional[RetryTable] = None,
        max_retries: int = 10,
    ) -> None:
        super().__init__(ecc, max_retries)
        self.chip = chip
        self.sample_wordline = sample_wordline
        self.table = table or RetryTable.vendor_default(chip.spec)
        self._tracked: Dict[tuple, np.ndarray] = {}

    # ------------------------------------------------------------------
    def tracked_offsets(self, block: int) -> np.ndarray:
        """Tracked optima of a block (lazily measured, cached per stress)."""
        key = (block, self.chip.block_stress(block).key())
        if key not in self._tracked:
            sample = self.chip.wordline(block, self.sample_wordline)
            self._tracked[key] = optimal_offsets(sample)
        return self._tracked[key]

    # ------------------------------------------------------------------
    def read(
        self,
        wordline: Wordline,
        page: Union[int, str],
        rng: Optional[np.random.Generator] = None,
        hint: Optional[float] = None,
    ) -> ReadOutcome:
        # hint ignored: tracking already supplies the first-attempt voltages
        outcome = self.new_outcome(wordline, page)
        tracked = self.tracked_offsets(wordline.block)
        if self.attempt(wordline, outcome, tracked, rng):
            return outcome
        for k in range(min(self.max_retries - 1, len(self.table))):
            if self.attempt(wordline, outcome, self.table.entry(k), rng):
                return outcome
        return outcome
