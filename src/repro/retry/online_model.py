"""Online process-variation / early-retention Vth model (Luo et al.,
arXiv 1807.05140).

"Improving 3D NAND Flash Memory Lifetime by Tolerating Early Retention
Loss and Process Variation" proposes reading at read voltages *predicted*
by an online model instead of walking a fixed ladder:

* **Retention prior** — the mean Vth shift of every state is a predictable
  function of the block's dwell time, P/E count and temperature; the
  controller tracks those and evaluates the same retention model the chip
  obeys (:func:`state_mean_shifts`), predicting each read-voltage offset
  as the mean shift of its two adjacent states.  This is the
  "early retention loss" component: the first sense already lands near
  the optimum of an aged block, before any decode failure.

* **Online per-chunk correction** — process variation is systematic
  across neighbouring layers, so the model keeps one learned offset
  vector per (block, layer-chunk), updated from decode feedback: every
  read that decodes with ECC margin contributes ``applied - prior`` to
  its chunk's correction.  Like the real proposal, the model improves as
  it serves reads — a freshly powered controller predicts from the prior
  alone and converges after one pass over a chunk.

On a decode failure the policy probes around the prediction (alternating
deeper/shallower along the chip's boundary-shift profile) rather than
restarting a vendor ladder.  A sentinel ``hint`` (warm path) re-anchors
the prediction so its sentinel-voltage component matches the hinted
offset, scaled along the shift profile.

Determinism contract: identical to :class:`AdaptiveRetryPolicy` — decode
feedback queues in read order and only :meth:`commit_feedback` folds it
into the committed per-chunk corrections, keeping batched and serial
paths bit-identical and sharded measurements worker-count-invariant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.ecc.capability import CapabilityEcc
from repro.flash.mechanisms import (
    HOURS_PER_YEAR,
    StressState,
    state_mean_shifts,
)
from repro.flash.spec import FlashSpec
from repro.flash.wordline import Wordline
from repro.retry.policy import ReadAttempt, ReadOutcome, ReadPolicy

#: feedback key: (block, layer // chunk_layers)
_Key = Tuple[int, int]


class OnlineModelPolicy(ReadPolicy):
    """Model-predicted first sense with per-chunk online corrections."""

    name = "online-model"

    def __init__(
        self,
        ecc: CapabilityEcc,
        spec: FlashSpec,
        chunk_layers: int = 1,
        max_retries: int = 10,
        history: int = 16,
        margin_fraction: float = 0.75,
        probe_fraction: float = 0.03,
    ) -> None:
        super().__init__(ecc, max_retries)
        self.spec = spec
        self.chunk_layers = max(1, chunk_layers)
        self.history = max(1, history)
        self.margin_fraction = margin_fraction
        # probe direction: the chip's nominal boundary-shift profile
        # (unit maximum), the same shape a vendor ladder walks
        shifts = state_mean_shifts(
            spec, StressState(retention_hours=HOURS_PER_YEAR)
        )
        profile = -(shifts[:-1] + shifts[1:]) / 2.0
        self._profile = profile / np.abs(profile).max()
        self._probe_step = probe_fraction * spec.state_pitch
        self._prior_cache: Dict[tuple, np.ndarray] = {}
        #: committed learned correction per chunk (DAC steps per voltage)
        self._corrections: Dict[_Key, np.ndarray] = {}
        #: (applied - prior) vectors queued since the last commit
        self._pending: Dict[_Key, List[np.ndarray]] = {}

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def prior_offsets(self, stress: StressState) -> np.ndarray:
        """Retention-model prediction of every read-voltage offset."""
        key = stress.key()
        if key not in self._prior_cache:
            shifts = state_mean_shifts(self.spec, stress)
            self._prior_cache[key] = np.round((shifts[:-1] + shifts[1:]) / 2.0)
        return self._prior_cache[key]

    def _chunk_of(self, block: int, layer: int) -> _Key:
        return (block, layer // self.chunk_layers)

    def _predict(
        self, prior: np.ndarray, key: _Key, hint: Optional[float]
    ) -> np.ndarray:
        pred = prior
        correction = self._corrections.get(key)
        if correction is not None:
            pred = pred + correction
        if hint is not None:
            sv = self.spec.sentinel_voltage - 1
            delta = float(hint) - float(pred[sv])
            half_pitch = self.spec.state_pitch / 2.0
            delta = float(np.clip(delta, -half_pitch, half_pitch))
            anchor = self._profile[sv]
            if abs(anchor) > 1e-9:
                pred = pred + delta * self._profile / anchor
            else:
                pred = pred + delta
        return np.round(pred)

    def _probe(self, pred: np.ndarray, attempt: int) -> np.ndarray:
        """Attempt ``attempt`` offsets: the prediction, then expanding
        probes alternating deeper (more shift) / shallower along the
        boundary-shift profile."""
        if attempt == 0:
            return pred
        magnitude = (attempt + 1) // 2
        sign = -1.0 if attempt % 2 == 1 else 1.0
        return np.round(
            pred + sign * magnitude * self._probe_step * self._profile
        )

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def _margin_clears(self, rber: float) -> bool:
        return rber <= self.margin_fraction * self.ecc.effective_rber

    def _note_feedback(
        self,
        key: _Key,
        prior: np.ndarray,
        applied: Optional[np.ndarray],
        outcome: ReadOutcome,
    ) -> None:
        if applied is None or not outcome.success:
            return
        if not self._margin_clears(outcome.attempts[-1].rber):
            return  # a barely-decoded read is a noisy teacher; skip it
        self._pending.setdefault(key, []).append(applied - prior)

    def commit_feedback(self) -> None:
        """Fold queued decode feedback into the per-chunk corrections.

        The committed correction of a chunk is the rounded per-voltage
        mean of its most recent ``history`` contributions.  Feedback
        queued inside :class:`repro.engine.ParallelMap` worker processes
        dies with the worker — commit boundaries belong to the caller.
        """
        for key, vectors in self._pending.items():
            window = vectors[-self.history:]
            self._corrections[key] = np.round(
                np.mean(np.stack(window), axis=0)
            )
        self._pending.clear()

    # ------------------------------------------------------------------
    # read paths
    # ------------------------------------------------------------------
    def read(
        self,
        wordline: Wordline,
        page: Union[int, str],
        rng: Optional[np.random.Generator] = None,
        hint: Optional[float] = None,
    ) -> ReadOutcome:
        outcome = self.new_outcome(wordline, page)
        prior = self.prior_offsets(wordline.stress)
        key = self._chunk_of(wordline.block, wordline.layer)
        pred = self._predict(prior, key, hint)
        applied: Optional[np.ndarray] = None
        for attempt in range(self.max_retries + 1):
            offsets = self._probe(pred, attempt)
            if self.attempt(wordline, outcome, offsets, rng):
                applied = offsets
                break
        self._note_feedback(key, prior, applied, outcome)
        return outcome

    def read_batch(self, cols, pages, hints=None, rng=None):
        """Lockstep batched read over the probe schedules.

        Every row's probe sequence is a pure function of its frozen
        prediction, so wave ``k`` senses exactly the attempts the serial
        loop would make; per-row offset matrices carry the per-chunk
        predictions.  Falls back to the per-row loop when a shared ``rng``
        or an active fault plan makes cross-row order observable.
        """
        from repro.faults import FAULTS

        if rng is not None or FAULTS.active:
            return super().read_batch(cols, pages, hints, rng)
        spec = cols.spec
        gray = spec.gray
        n_rows = cols.n_wordlines
        prior = self.prior_offsets(cols.stress)
        keys: List[_Key] = []
        preds: List[np.ndarray] = []
        for r in range(n_rows):
            key = self._chunk_of(
                cols.block, spec.layer_of_wordline(cols.indices[r])
            )
            keys.append(key)
            hint = hints[r] if hints is not None else None
            preds.append(self._predict(prior, key, hint))
        outcomes: List[List[ReadOutcome]] = [
            [None] * len(pages) for _ in range(n_rows)
        ]
        applied_by: List[List[Optional[np.ndarray]]] = [
            [None] * len(pages) for _ in range(n_rows)
        ]
        for j, page in enumerate(pages):
            p = gray.page_index(page)
            n_pv = len(gray.page_voltages(p))
            outs = [
                ReadOutcome(page=p, page_voltages=n_pv) for _ in range(n_rows)
            ]
            for r in range(n_rows):
                outcomes[r][j] = outs[r]
            active = list(range(n_rows))
            for wave in range(self.max_retries + 1):
                if not active:
                    break
                matrix = np.stack(
                    [self._probe(preds[r], wave) for r in active]
                )
                batch = cols.read_page_batch(p, matrix, rows=active)
                decoded = self.ecc.decode_ok_batch(batch.mismatch)
                still_failing = []
                for i, r in enumerate(active):
                    out = outs[r]
                    out.attempts.append(
                        ReadAttempt(
                            offsets=matrix[i],
                            rber=float(batch.rber[i]),
                            decoded=bool(decoded[i]),
                        )
                    )
                    if len(out.attempts) > 1:
                        out.retries += 1
                    out.success = bool(decoded[i])
                    if out.success:
                        applied_by[r][j] = matrix[i]
                    else:
                        still_failing.append(r)
                active = still_failing
        # feedback in canonical (row, page) order — the serial read order
        for r in range(n_rows):
            for j in range(len(pages)):
                self._note_feedback(
                    keys[r], prior, applied_by[r][j], outcomes[r][j]
                )
        self._flush_batch_obs(outcomes)
        return outcomes
