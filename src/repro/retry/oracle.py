"""Oracle policy: read at the true per-wordline optimal voltages ("OPT").

Upper bound used throughout the paper's evaluation.  The optimum is found by
exhaustive search on the wordline's realized cell voltages — information no
real controller has, which is the whole point of the baseline.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.flash.optimal import optimal_offsets
from repro.flash.wordline import Wordline
from repro.retry.policy import ReadOutcome, ReadPolicy


class OraclePolicy(ReadPolicy):
    """First attempt at default voltages, then jump straight to the optimum."""

    name = "opt"

    def __init__(self, ecc, max_retries: int = 10, skip_default: bool = False):
        super().__init__(ecc, max_retries)
        self.skip_default = skip_default

    def read(
        self,
        wordline: Wordline,
        page: Union[int, str],
        rng: Optional[np.random.Generator] = None,
        hint: Optional[float] = None,
    ) -> ReadOutcome:
        # hint ignored: the oracle already knows the optimum
        outcome = self.new_outcome(wordline, page)
        if not self.skip_default:
            if self.attempt(wordline, outcome, None, rng):
                return outcome
        opt = optimal_offsets(wordline)
        self.attempt(wordline, outcome, opt, rng)
        return outcome
