"""The "current flash" baseline: a vendor-style read-retry table.

Today's chips ship a fixed table of retry voltage sets; after a decode
failure the controller walks the table entry by entry until a read decodes or
the table is exhausted.  Vendors shape each entry with the *typical* shift
profile of the cell states (larger corrections for the faster-shifting lower
states), but the table knows nothing about the actual wordline at hand — on
an aged block that means many retries (6.6 on average in the paper's
Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.ecc.capability import CapabilityEcc
from repro.flash.mechanisms import (
    HOURS_PER_YEAR,
    StressState,
    state_mean_shifts,
)
from repro.flash.spec import FlashSpec
from repro.flash.wordline import Wordline
from repro.retry.policy import ReadOutcome, ReadPolicy


@dataclass(frozen=True)
class RetryTable:
    """An ordered list of per-voltage offset vectors."""

    entries: np.ndarray  # (n_entries, n_voltages)

    def __len__(self) -> int:
        return len(self.entries)

    def entry(self, index: int) -> np.ndarray:
        return self.entries[index]

    @classmethod
    def vendor_default(
        cls,
        spec: FlashSpec,
        n_entries: int = 12,
        step_fraction: float = 0.02,
        ramp: float = 0.08,
    ) -> "RetryTable":
        """A ladder of growing downward corrections.

        Entry ``k`` applies ``-k * step * (1 + ramp*k) * w(i)`` to voltage
        ``V_i``, where ``w`` is the chip's nominal per-state shift profile
        normalized to a unit maximum — the shape a vendor would burn into
        firmware from its own characterization.  Strides grow slightly
        (``ramp``) so the late entries still reach heavily-shifted wordlines,
        as real vendor tables do.  ``step_fraction`` scales the base stride
        with the state pitch.
        """
        # The vendor knows the chip's mean shift profile (including the
        # erased state creeping *up*); each boundary moves by the mean of
        # its two adjacent state shifts.
        shifts = state_mean_shifts(
            spec, StressState(retention_hours=HOURS_PER_YEAR)
        )
        boundary_w = -(shifts[:-1] + shifts[1:]) / 2.0  # per read voltage
        boundary_w = boundary_w / np.abs(boundary_w).max()
        step = step_fraction * spec.state_pitch
        entries = np.array(
            [
                -np.round((k + 1) * step * (1.0 + ramp * (k + 1)) * boundary_w)
                for k in range(n_entries)
            ],
            dtype=np.float64,
        )
        return cls(entries=entries)


class CurrentFlashPolicy(ReadPolicy):
    """Walk the retry table until the page decodes."""

    name = "current-flash"

    def __init__(
        self,
        ecc: CapabilityEcc,
        spec: FlashSpec,
        table: Optional[RetryTable] = None,
        max_retries: int = 10,
        soft_fallback: bool = False,
    ) -> None:
        super().__init__(ecc, max_retries)
        self.table = table or RetryTable.vendor_default(spec)
        self.soft_fallback = soft_fallback

    def read(
        self,
        wordline: Wordline,
        page: Union[int, str],
        rng: Optional[np.random.Generator] = None,
        hint: Optional[float] = None,
    ) -> ReadOutcome:
        # hint ignored: the vendor table has no notion of a cached offset
        outcome = self.new_outcome(wordline, page)
        if self.attempt(wordline, outcome, None, rng):
            return outcome
        for k in range(min(self.max_retries, len(self.table))):
            if self.attempt(wordline, outcome, self.table.entry(k), rng):
                return outcome
        if self.soft_fallback:
            self.soft_rescue(wordline, outcome, rng)
        return outcome
