"""The "current flash" baseline: a vendor-style read-retry table.

Today's chips ship a fixed table of retry voltage sets; after a decode
failure the controller walks the table entry by entry until a read decodes or
the table is exhausted.  Vendors shape each entry with the *typical* shift
profile of the cell states (larger corrections for the faster-shifting lower
states), but the table knows nothing about the actual wordline at hand — on
an aged block that means many retries (6.6 on average in the paper's
Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.ecc.capability import CapabilityEcc
from repro.flash.mechanisms import (
    HOURS_PER_YEAR,
    StressState,
    state_mean_shifts,
)
from repro.flash.spec import FlashSpec
from repro.flash.wordline import Wordline
from repro.retry.policy import ReadOutcome, ReadPolicy


@dataclass(frozen=True)
class RetryTable:
    """An ordered list of per-voltage offset vectors."""

    entries: np.ndarray  # (n_entries, n_voltages)

    def __len__(self) -> int:
        return len(self.entries)

    def entry(self, index: int) -> np.ndarray:
        return self.entries[index]

    @classmethod
    def vendor_default(
        cls,
        spec: FlashSpec,
        n_entries: int = 12,
        step_fraction: float = 0.02,
        ramp: float = 0.08,
    ) -> "RetryTable":
        """A ladder of growing downward corrections.

        Entry ``k`` applies ``-k * step * (1 + ramp*k) * w(i)`` to voltage
        ``V_i``, where ``w`` is the chip's nominal per-state shift profile
        normalized to a unit maximum — the shape a vendor would burn into
        firmware from its own characterization.  Strides grow slightly
        (``ramp``) so the late entries still reach heavily-shifted wordlines,
        as real vendor tables do.  ``step_fraction`` scales the base stride
        with the state pitch.
        """
        # The vendor knows the chip's mean shift profile (including the
        # erased state creeping *up*); each boundary moves by the mean of
        # its two adjacent state shifts.
        shifts = state_mean_shifts(
            spec, StressState(retention_hours=HOURS_PER_YEAR)
        )
        boundary_w = -(shifts[:-1] + shifts[1:]) / 2.0  # per read voltage
        boundary_w = boundary_w / np.abs(boundary_w).max()
        step = step_fraction * spec.state_pitch
        entries = np.array(
            [
                -np.round((k + 1) * step * (1.0 + ramp * (k + 1)) * boundary_w)
                for k in range(n_entries)
            ],
            dtype=np.float64,
        )
        return cls(entries=entries)


class CurrentFlashPolicy(ReadPolicy):
    """Walk the retry table until the page decodes."""

    name = "current-flash"

    def __init__(
        self,
        ecc: CapabilityEcc,
        spec: FlashSpec,
        table: Optional[RetryTable] = None,
        max_retries: int = 10,
        soft_fallback: bool = False,
    ) -> None:
        super().__init__(ecc, max_retries)
        self.table = table or RetryTable.vendor_default(spec)
        self.soft_fallback = soft_fallback

    def read(
        self,
        wordline: Wordline,
        page: Union[int, str],
        rng: Optional[np.random.Generator] = None,
        hint: Optional[float] = None,
    ) -> ReadOutcome:
        # hint ignored: the vendor table has no notion of a cached offset
        outcome = self.new_outcome(wordline, page)
        if self.attempt(wordline, outcome, None, rng):
            return outcome
        for k in range(min(self.max_retries, len(self.table))):
            if self.attempt(wordline, outcome, self.table.entry(k), rng):
                return outcome
        if self.soft_fallback:
            self.soft_rescue(wordline, outcome, rng)
        return outcome

    # ------------------------------------------------------------------
    def read_batch(self, cols, pages, hints=None, rng=None):
        """Lockstep batched read: one kernel call per (page, ladder entry).

        The vendor table applies the same offsets to every wordline, so
        attempt ``k`` of all still-failing rows is a single
        ``read_page_batch`` call.  Per-row results are bit-identical to
        :meth:`read`: each row's noise draws happen in the same order
        (page-major, attempt-major) because attempt ``k`` only senses rows
        that are still failing — exactly the attempts the serial loop
        would make.  Falls back to the per-row loop when a shared ``rng``
        or an active fault plan makes cross-row call order observable.
        """
        from repro.faults import FAULTS

        if rng is not None or FAULTS.active:
            return super().read_batch(cols, pages, hints, rng)
        from repro.retry.policy import ReadAttempt, ReadOutcome

        gray = cols.spec.gray
        n_rows = cols.n_wordlines
        outcomes = [[None] * len(pages) for _ in range(n_rows)]
        ladder = [None] + [
            self.table.entry(k)
            for k in range(min(self.max_retries, len(self.table)))
        ]
        for j, page in enumerate(pages):
            p = gray.page_index(page)
            n_pv = len(gray.page_voltages(p))
            outs = [
                ReadOutcome(page=p, page_voltages=n_pv) for _ in range(n_rows)
            ]
            for r in range(n_rows):
                outcomes[r][j] = outs[r]
            active = list(range(n_rows))
            for offsets in ladder:
                if not active:
                    break
                batch = cols.read_page_batch(p, offsets, rows=active)
                decoded = self.ecc.decode_ok_batch(batch.mismatch)
                still_failing = []
                for i, r in enumerate(active):
                    out = outs[r]
                    out.attempts.append(
                        ReadAttempt(
                            offsets=batch.offsets,
                            rber=float(batch.rber[i]),
                            decoded=bool(decoded[i]),
                        )
                    )
                    if len(out.attempts) > 1:
                        out.retries += 1
                    out.success = bool(decoded[i])
                    if not out.success:
                        still_failing.append(r)
                active = still_failing
            if self.soft_fallback:
                for r in active:
                    self.soft_rescue(cols.wordline_view(r), outs[r], rng)
        self._flush_batch_obs(outcomes)
        return outcomes
