"""Read-retry policies: the baselines the paper compares against.

All policies implement :class:`repro.retry.policy.ReadPolicy` and return a
:class:`repro.retry.policy.ReadOutcome`, so the experiment drivers can swap
them freely:

* :class:`repro.retry.current_flash.CurrentFlashPolicy` — the vendor retry
  table shipped in today's chips ("current flash" in the paper's figures).
* :class:`repro.retry.tracking.TrackingPolicy` — Cai et al. (HPCA'15): track
  the optimal voltages of one sampled wordline per block and apply them to
  the whole block.
* :class:`repro.retry.layer_similarity.LayerSimilarityPolicy` — Shim et al.
  (MICRO'19): one tracked optimum per layer.
* :class:`repro.retry.oracle.OraclePolicy` — reads at the true per-wordline
  optimum ("OPT").
* :class:`repro.retry.adaptive.AdaptiveRetryPolicy` — Park et al. (arXiv
  2104.09611): learned per-(block, layer) ladder starts plus pipelined
  speculative retry sensing.
* :class:`repro.retry.online_model.OnlineModelPolicy` — Luo et al. (arXiv
  1807.05140): retention-model prediction before the first sense with
  online per-chunk process-variation corrections.

The sentinel controller itself lives in :mod:`repro.core.controller`.
"""

from repro.retry.policy import ReadPolicy, ReadOutcome, ReadAttempt
from repro.retry.current_flash import CurrentFlashPolicy, RetryTable
from repro.retry.tracking import TrackingPolicy
from repro.retry.layer_similarity import LayerSimilarityPolicy
from repro.retry.oracle import OraclePolicy
from repro.retry.tracked_sentinel import TrackedSentinelPolicy
from repro.retry.adaptive import AdaptiveRetryPolicy
from repro.retry.online_model import OnlineModelPolicy

__all__ = [
    "ReadPolicy",
    "ReadOutcome",
    "ReadAttempt",
    "CurrentFlashPolicy",
    "RetryTable",
    "TrackingPolicy",
    "LayerSimilarityPolicy",
    "OraclePolicy",
    "TrackedSentinelPolicy",
    "AdaptiveRetryPolicy",
    "OnlineModelPolicy",
]
