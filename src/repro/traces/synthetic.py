"""Synthetic stand-ins for the eight MSR-Cambridge workloads.

The real volume traces (hm_0, mds_0, prn_0, proj_0, rsrch_0, src2_0, stg_0,
usr_0) are not redistributable.  Each generator below reproduces the
published summary characteristics of its namesake — read/write mix by
request count, footprint, request-size profile, access skew, and bursty
arrivals — which is what the Figure 14 latency experiment is sensitive to.
The mixes follow the per-volume totals reported with the trace release
(Narayanan et al., "Migrating Server Storage to SSDs", EuroSys'09).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.traces.trace import Trace, TraceRequest
from repro.util.rng import derive_rng

_SECTOR = 512
_LARGE_PRIME = 2654435761  # Knuth multiplicative hash, spreads hot ranks


@dataclass(frozen=True)
class WorkloadParams:
    """Shape parameters of one synthetic workload."""

    name: str
    read_fraction: float  # by request count
    mean_iops: float
    footprint_bytes: int
    zipf_theta: float  # 0 = uniform, ->1 = highly skewed
    size_choices_kb: Tuple[int, ...]  # request-size mixture
    size_weights: Tuple[float, ...]
    burstiness: float  # 0 = Poisson; >0 adds on/off bursts

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if abs(sum(self.size_weights) - 1.0) > 1e-6:
            raise ValueError("size_weights must sum to 1")
        if not 0.0 <= self.zipf_theta < 1.0:
            raise ValueError("zipf_theta must be in [0, 1)")


def _gib(n: float) -> int:
    return int(n * 2**30)


#: The eight workloads of the paper's Figure 14.
MSR_WORKLOADS: Dict[str, WorkloadParams] = {
    "hm_0": WorkloadParams(
        "hm_0", 0.33, 80.0, _gib(2.0), 0.70,
        (4, 8, 16, 64), (0.45, 0.30, 0.15, 0.10), 0.5,
    ),
    "mds_0": WorkloadParams(
        "mds_0", 0.30, 40.0, _gib(3.0), 0.75,
        (4, 16, 32, 64), (0.50, 0.25, 0.15, 0.10), 0.6,
    ),
    "prn_0": WorkloadParams(
        "prn_0", 0.22, 100.0, _gib(4.0), 0.65,
        (4, 8, 16, 64), (0.40, 0.25, 0.20, 0.15), 0.7,
    ),
    "proj_0": WorkloadParams(
        "proj_0", 0.12, 140.0, _gib(4.0), 0.60,
        (4, 16, 64, 128), (0.35, 0.25, 0.25, 0.15), 0.8,
    ),
    "rsrch_0": WorkloadParams(
        "rsrch_0", 0.05, 50.0, _gib(1.0), 0.80,
        (4, 8, 16, 32), (0.60, 0.20, 0.15, 0.05), 0.4,
    ),
    "src2_0": WorkloadParams(
        "src2_0", 0.05, 60.0, _gib(2.0), 0.70,
        (4, 8, 32, 64), (0.55, 0.20, 0.15, 0.10), 0.6,
    ),
    "stg_0": WorkloadParams(
        "stg_0", 0.30, 70.0, _gib(3.0), 0.65,
        (4, 16, 32, 128), (0.45, 0.25, 0.20, 0.10), 0.5,
    ),
    "usr_0": WorkloadParams(
        "usr_0", 0.60, 90.0, _gib(2.5), 0.75,
        (4, 8, 16, 64), (0.50, 0.25, 0.15, 0.10), 0.5,
    ),
}


def bounded_zipf_pages(
    rng: np.random.Generator, n_pages: int, theta: float, count: int
) -> np.ndarray:
    """Skewed page ranks via the bounded-Zipf inverse-CDF approximation.

    For theta in [0, 1) the CDF of a bounded Zipf(theta) distribution is
    approximately ``(x / N) ** (1 - theta)``; inverting a uniform draw gives
    the rank.  Ranks are then scattered across the address space with a
    multiplicative hash so hot pages are not physically clustered.
    """
    u = rng.random(count)
    ranks = np.floor(n_pages * u ** (1.0 / (1.0 - theta))).astype(np.int64)
    ranks = np.minimum(ranks, n_pages - 1)
    return (ranks * _LARGE_PRIME) % n_pages


def generate_workload(
    params: WorkloadParams,
    n_requests: int = 20000,
    seed: int = 0,
    page_bytes: int = 4096,
    rate_scale: float = 1.0,
) -> Trace:
    """Generate one synthetic trace.

    ``rate_scale`` multiplies the arrival rate; the MSR volumes were traced
    on lightly-loaded servers, and the latency experiments replay them
    accelerated (as trace-driven SSD studies commonly do) so the device
    operates at realistic utilization.
    """
    rng = derive_rng(seed, "trace", params.name)
    n_pages = max(params.footprint_bytes // page_bytes, 1)

    # --- arrivals: exponential gaps with an on/off burst modulation -------
    base_gap = 1.0 / (params.mean_iops * rate_scale)
    gaps = rng.exponential(base_gap, size=n_requests)
    if params.burstiness > 0:
        # Markov-modulated rate: bursts run ~50 requests at 5x the rate,
        # idle stretches compensate to keep the mean IOPS
        phase = rng.random(n_requests) < 0.3
        burst_speedup = 1.0 / (1.0 + 4.0 * params.burstiness)
        idle_slowdown = (1.0 - 0.3 * burst_speedup) / 0.7
        gaps = gaps * np.where(phase, burst_speedup, idle_slowdown)
    times = np.cumsum(gaps)

    # --- ops, addresses, sizes -------------------------------------------
    is_read = rng.random(n_requests) < params.read_fraction
    pages = bounded_zipf_pages(rng, n_pages, params.zipf_theta, n_requests)
    sizes_kb = rng.choice(
        params.size_choices_kb, size=n_requests, p=params.size_weights
    )

    requests: List[TraceRequest] = [
        TraceRequest(
            time_s=float(times[i]),
            op="R" if is_read[i] else "W",
            lba_bytes=int(pages[i]) * page_bytes,
            size_bytes=int(sizes_kb[i]) * 1024,
        )
        for i in range(n_requests)
    ]
    return Trace(params.name, requests)


def generate_all_workloads(
    n_requests: int = 20000, seed: int = 0
) -> Dict[str, Trace]:
    """All eight Figure 14 workloads."""
    return {
        name: generate_workload(params, n_requests=n_requests, seed=seed)
        for name, params in MSR_WORKLOADS.items()
    }
