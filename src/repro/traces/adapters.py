"""Pluggable trace-format adapters: one registry, many block-trace dialects.

New workload formats plug in as a small adapter — a parse function plus an
optional sniffer — instead of forking the parser/frontend pipeline.  Every
adapter returns the same :class:`~repro.traces.trace.Trace` contract:

* request order is the **logged order** of the source (never re-sorted);
* ``time_s`` is rebased so the earliest request sits at 0.0;
* sizes are clamped up to one 512-byte sector, counted in
  ``meta["clamped_records"]``.

Shipped adapters:

``msr``
    MSR-Cambridge CSV (:mod:`repro.traces.msr`):
    ``Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`` with
    100 ns-tick timestamps.
``blkparse``
    Linux blktrace text output as printed by ``blkparse`` with the default
    format: ``maj,min cpu seq timestamp pid action rwbs sector + blocks
    [process]``.  Only *queue* (``Q``) actions become requests — they mark
    host submission, the event replay cares about — and only read/write
    rwbs flags are kept (discards, flushes and barriers are skipped and
    counted in ``meta["skipped_records"]``).

``load_trace`` picks the adapter from an explicit format name or by
sniffing the first non-blank lines, so callers (the replay CLI, the
campaign runner) stay format-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Union

from repro.traces.msr import parse_msr_csv
from repro.traces.trace import Trace, TraceRequest

_SECTOR_BYTES = 512

#: parse(lines, name, max_requests) -> Trace
ParseFn = Callable[[Iterable[str], str, Optional[int]], Trace]
#: sniff(sample_lines) -> bool; sample is the first few non-blank lines
SniffFn = Callable[[List[str]], bool]


@dataclass(frozen=True)
class TraceAdapter:
    """One registered block-trace format."""

    name: str
    parse: ParseFn
    sniff: SniffFn
    description: str


_REGISTRY: "Dict[str, TraceAdapter]" = {}


def register_adapter(
    name: str,
    parse: ParseFn,
    sniff: SniffFn,
    description: str = "",
) -> TraceAdapter:
    """Register (or replace) one adapter under ``name`` (lowercased)."""
    adapter = TraceAdapter(
        name=name.lower(), parse=parse, sniff=sniff,
        description=description,
    )
    _REGISTRY[adapter.name] = adapter
    return adapter


def adapter_names() -> Tuple[str, ...]:
    """Registered format names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_adapter(name: str) -> TraceAdapter:
    adapter = _REGISTRY.get(name.lower())
    if adapter is None:
        raise ValueError(
            f"unknown trace format {name!r}; registered: "
            f"{', '.join(adapter_names())}"
        )
    return adapter


def sniff_format(lines: List[str]) -> Optional[str]:
    """The first registered adapter whose sniffer accepts ``lines``.

    Adapters are tried in sorted-name order so the outcome does not depend
    on registration order."""
    sample = [ln for ln in lines if ln.strip()][:8]
    if not sample:
        return None
    for name in adapter_names():
        if _REGISTRY[name].sniff(sample):
            return name
    return None


def load_trace(
    path: Union[str, Path],
    fmt: Optional[str] = None,
    max_requests: Optional[int] = None,
) -> Trace:
    """Load a block trace, picking the adapter by ``fmt`` or by sniffing.

    The whole file is read once; sniffing uses its head.  Raises
    ``ValueError`` when no adapter claims the content."""
    path = Path(path)
    lines = path.read_text().splitlines()
    if fmt is None:
        fmt = sniff_format(lines)
        if fmt is None:
            raise ValueError(
                f"could not sniff the trace format of {path}; pass one of "
                f"{', '.join(adapter_names())} explicitly"
            )
    adapter = get_adapter(fmt)
    return adapter.parse(lines, path.stem, max_requests)


# ---------------------------------------------------------------------------
# msr adapter
# ---------------------------------------------------------------------------
def _sniff_msr(sample: List[str]) -> bool:
    line = next(
        (ln for ln in sample if ln.strip() and not ln.startswith("#")), ""
    )
    fields = line.split(",")
    if len(fields) < 6:
        return False
    try:
        int(fields[0])
        int(fields[4])
        int(fields[5])
    except ValueError:
        return False
    return fields[3].strip().lower() in ("read", "write")


register_adapter(
    "msr",
    parse=parse_msr_csv,
    sniff=_sniff_msr,
    description="MSR-Cambridge CSV (SNIA IOTTA): "
    "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime",
)


# ---------------------------------------------------------------------------
# blkparse adapter
# ---------------------------------------------------------------------------
def parse_blkparse(
    lines: Iterable[str],
    name: str = "blkparse",
    max_requests: Optional[int] = None,
) -> Trace:
    """Parse ``blkparse`` default text output into a :class:`Trace`.

    Fields: ``maj,min cpu seq timestamp pid action rwbs sector + blocks
    [process]``.  ``Q`` (queue) actions with an ``R``/``W`` rwbs flag
    become requests; other actions (issue, complete, merges) and
    non-data rwbs (discard, flush, barrier) are skipped and counted in
    ``meta["skipped_records"]``.  Sector/blocks are 512-byte units.
    Timestamps (seconds, ns precision) are rebased to the minimum seen —
    multi-CPU logs interleave slightly out of order and that order is
    preserved, exactly like the MSR parser.
    """
    records: List[Tuple[float, str, int, int]] = []
    clamped = 0
    skipped = 0
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        # trailer summary sections ("Total (8,0): ..." etc.) follow a
        # blank line in real dumps; tolerate anything that does not look
        # like an event record by requiring the canonical field shape
        if len(fields) < 10 or "," not in fields[0] or fields[8] != "+":
            skipped += 1
            continue
        action = fields[5]
        rwbs = fields[6]
        try:
            time_s = float(fields[3])
            sector = int(fields[7])
            nblocks = int(fields[9])
        except ValueError:
            raise ValueError(f"malformed blkparse record: {line!r}")
        if action != "Q":
            skipped += 1
            continue
        op = next((c for c in rwbs if c in ("R", "W")), None)
        if op is None or "D" in rwbs or nblocks <= 0:
            # discard, barrier, or a data-less flush record
            skipped += 1
            continue
        size = nblocks * _SECTOR_BYTES
        if size < _SECTOR_BYTES:
            clamped += 1
            size = _SECTOR_BYTES
        records.append((time_s, op, sector * _SECTOR_BYTES, size))
        if max_requests is not None and len(records) >= max_requests:
            break
    t0 = min(r[0] for r in records) if records else 0.0
    requests = [
        TraceRequest(
            time_s=time_s - t0, op=op, lba_bytes=lba, size_bytes=size
        )
        for time_s, op, lba, size in records
    ]
    meta = {"clamped_records": clamped, "skipped_records": skipped}
    return Trace(name, requests, meta=meta)


def load_blkparse_trace(
    path: Union[str, Path], max_requests: Optional[int] = None
) -> Trace:
    """Load a blkparse text dump (e.g. ``sdb.blktrace.txt``)."""
    path = Path(path)
    with path.open() as handle:
        return parse_blkparse(
            handle, name=path.stem, max_requests=max_requests
        )


def _sniff_blkparse(sample: List[str]) -> bool:
    line = next(
        (ln for ln in sample if ln.strip() and not ln.startswith("#")), ""
    )
    fields = line.split()
    if len(fields) < 10 or "," not in fields[0] or fields[8] != "+":
        return False
    try:
        float(fields[3])
        int(fields[7])
        int(fields[9])
    except ValueError:
        return False
    return True


register_adapter(
    "blkparse",
    parse=parse_blkparse,
    sniff=_sniff_blkparse,
    description="Linux blktrace text output (blkparse default format): "
    "maj,min cpu seq timestamp pid action rwbs sector + blocks [process]",
)
