"""Trace data model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence


@dataclass(frozen=True)
class TraceRequest:
    """One block-level I/O request."""

    time_s: float  # arrival time relative to trace start
    op: str  # "R" or "W"
    lba_bytes: int  # byte offset on the volume
    size_bytes: int

    def __post_init__(self) -> None:
        if self.op not in ("R", "W"):
            raise ValueError(f"op must be 'R' or 'W', got {self.op!r}")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.lba_bytes < 0:
            raise ValueError("lba_bytes must be non-negative")

    @property
    def is_read(self) -> bool:
        return self.op == "R"


class Trace:
    """A sequence of requests in the order the source logged them.

    The request order is preserved, **not** sorted by ``time_s``: the
    published MSR volumes log requests in completion order, so slightly
    out-of-order arrival times are real data the parser deliberately
    keeps (:mod:`repro.traces.msr`).  Consumers that need arrival order
    (the replay frontends) sort locally; aggregate statistics here use
    min/max over ``time_s`` rather than positional first/last.

    ``meta`` carries parser-side accounting (e.g. the MSR reader's
    ``clamped_records`` count) that is about how the trace was *obtained*
    rather than the requests themselves.  Its scope is the parse that
    produced the trace: a truncated view (:meth:`head`) carries a copy
    whose counts still describe the untruncated parse.
    """

    def __init__(
        self,
        name: str,
        requests: Sequence[TraceRequest],
        meta: Optional[Dict[str, int]] = None,
    ) -> None:
        self.name = name
        self.requests: List[TraceRequest] = list(requests)
        self.meta: Dict[str, int] = dict(meta or {})

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterable[TraceRequest]:
        return iter(self.requests)

    # ------------------------------------------------------------------
    @property
    def duration_s(self) -> float:
        """Trace span: max minus min arrival time.

        Positional first/last would under-report the span on
        completion-ordered traces, skewing every rate derived from it."""
        if not self.requests:
            return 0.0
        times = [r.time_s for r in self.requests]
        return max(times) - min(times)

    @property
    def read_fraction(self) -> float:
        if not self.requests:
            return 0.0
        return sum(r.is_read for r in self.requests) / len(self.requests)

    @property
    def total_read_bytes(self) -> int:
        return sum(r.size_bytes for r in self.requests if r.is_read)

    @property
    def total_write_bytes(self) -> int:
        return sum(r.size_bytes for r in self.requests if not r.is_read)

    def head(self, n: int) -> "Trace":
        """The first ``n`` requests (in logged order) as a new trace.

        ``meta`` is copied, never aliased, so mutation by one consumer
        cannot leak into the other; its counts keep describing the
        original untruncated parse (``clamped_records`` of the full
        file, not of the first ``n`` requests)."""
        return Trace(self.name, self.requests[:n], meta=dict(self.meta))

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self)} reqs over {self.duration_s:.1f}s, "
            f"{self.read_fraction:.0%} reads, "
            f"{self.total_read_bytes / 2**20:.1f} MiB read / "
            f"{self.total_write_bytes / 2**20:.1f} MiB written"
        )
