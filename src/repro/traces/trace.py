"""Trace data model."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence


@dataclass(frozen=True)
class TraceRequest:
    """One block-level I/O request."""

    time_s: float  # arrival time relative to trace start
    op: str  # "R" or "W"
    lba_bytes: int  # byte offset on the volume
    size_bytes: int

    def __post_init__(self) -> None:
        if self.op not in ("R", "W"):
            raise ValueError(f"op must be 'R' or 'W', got {self.op!r}")
        if self.size_bytes <= 0:
            raise ValueError("size_bytes must be positive")
        if self.lba_bytes < 0:
            raise ValueError("lba_bytes must be non-negative")

    @property
    def is_read(self) -> bool:
        return self.op == "R"


class Trace:
    """An ordered sequence of requests.

    ``meta`` carries parser-side accounting (e.g. the MSR reader's
    ``clamped_records`` count) that is about how the trace was *obtained*
    rather than the requests themselves.
    """

    def __init__(
        self,
        name: str,
        requests: Sequence[TraceRequest],
        meta: Optional[Dict[str, int]] = None,
    ) -> None:
        self.name = name
        self.requests: List[TraceRequest] = sorted(
            requests, key=lambda r: r.time_s
        )
        self.meta: Dict[str, int] = dict(meta or {})

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterable[TraceRequest]:
        return iter(self.requests)

    # ------------------------------------------------------------------
    @property
    def duration_s(self) -> float:
        if not self.requests:
            return 0.0
        return self.requests[-1].time_s - self.requests[0].time_s

    @property
    def read_fraction(self) -> float:
        if not self.requests:
            return 0.0
        return sum(r.is_read for r in self.requests) / len(self.requests)

    @property
    def total_read_bytes(self) -> int:
        return sum(r.size_bytes for r in self.requests if r.is_read)

    @property
    def total_write_bytes(self) -> int:
        return sum(r.size_bytes for r in self.requests if not r.is_read)

    def head(self, n: int) -> "Trace":
        """The first ``n`` requests as a new trace (meta carries over)."""
        return Trace(self.name, self.requests[:n], meta=self.meta)

    def describe(self) -> str:
        return (
            f"{self.name}: {len(self)} reqs over {self.duration_s:.1f}s, "
            f"{self.read_fraction:.0%} reads, "
            f"{self.total_read_bytes / 2**20:.1f} MiB read / "
            f"{self.total_write_bytes / 2**20:.1f} MiB written"
        )
