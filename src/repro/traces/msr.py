"""MSR-Cambridge trace parsing.

Format (SNIA IOTTA release): CSV lines of

``Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime``

where ``Timestamp`` is a Windows filetime (100 ns ticks since 1601-01-01),
``Type`` is ``Read``/``Write``, ``Offset``/``Size`` are bytes and
``ResponseTime`` is in ticks.

Timestamps are rebased to the **minimum** tick of the parsed records, not
the first one: the published volumes contain slightly out-of-order lines
(completion-ordered logging), and rebasing to the first record would give
those earlier-but-later-logged requests negative arrival times.

Requests smaller than one 512-byte sector are clamped up to a sector; the
clamp is counted in ``Trace.meta["clamped_records"]`` so consumers (the
replay frontend, reports) can surface how much of the trace was touched
up instead of the data being mutated invisibly.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Tuple, Union

from repro.traces.trace import Trace, TraceRequest

_TICKS_PER_SECOND = 1e7
_SECTOR_BYTES = 512


def parse_msr_csv(
    lines: Iterable[str],
    name: str = "msr",
    max_requests: Optional[int] = None,
) -> Trace:
    """Parse MSR CSV lines into a :class:`Trace`.

    The returned trace carries ``meta["clamped_records"]`` — the number of
    records whose size was below one sector and got clamped to 512 bytes.
    """
    records: List[Tuple[int, str, int, int]] = []
    clamped = 0
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split(",")
        if len(fields) < 6:
            raise ValueError(f"malformed MSR record: {line!r}")
        ticks = int(fields[0])
        op_name = fields[3].strip().lower()
        if op_name not in ("read", "write"):
            raise ValueError(f"unknown op {fields[3]!r} in record {line!r}")
        size = int(fields[5])
        if size < _SECTOR_BYTES:
            clamped += 1
            size = _SECTOR_BYTES
        records.append(
            (ticks, "R" if op_name == "read" else "W", int(fields[4]), size)
        )
        if max_requests is not None and len(records) >= max_requests:
            break
    t0 = min(r[0] for r in records) if records else 0
    requests = [
        TraceRequest(
            time_s=(ticks - t0) / _TICKS_PER_SECOND,
            op=op,
            lba_bytes=lba,
            size_bytes=size,
        )
        for ticks, op, lba, size in records
    ]
    return Trace(name, requests, meta={"clamped_records": clamped})


def load_msr_trace(
    path: Union[str, Path], max_requests: Optional[int] = None
) -> Trace:
    """Load an MSR CSV file (e.g. ``hm_0.csv``)."""
    path = Path(path)
    with path.open() as handle:
        return parse_msr_csv(handle, name=path.stem, max_requests=max_requests)
