"""MSR-Cambridge trace parsing.

Format (SNIA IOTTA release): CSV lines of

``Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime``

where ``Timestamp`` is a Windows filetime (100 ns ticks since 1601-01-01),
``Type`` is ``Read``/``Write``, ``Offset``/``Size`` are bytes and
``ResponseTime`` is in ticks.  Timestamps are rebased to the first request.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Union

from repro.traces.trace import Trace, TraceRequest

_TICKS_PER_SECOND = 1e7


def parse_msr_csv(
    lines: Iterable[str],
    name: str = "msr",
    max_requests: Optional[int] = None,
) -> Trace:
    """Parse MSR CSV lines into a :class:`Trace`."""
    requests: List[TraceRequest] = []
    t0: Optional[int] = None
    for line in lines:
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split(",")
        if len(fields) < 6:
            raise ValueError(f"malformed MSR record: {line!r}")
        ticks = int(fields[0])
        op_name = fields[3].strip().lower()
        if op_name not in ("read", "write"):
            raise ValueError(f"unknown op {fields[3]!r} in record {line!r}")
        if t0 is None:
            t0 = ticks
        requests.append(
            TraceRequest(
                time_s=(ticks - t0) / _TICKS_PER_SECOND,
                op="R" if op_name == "read" else "W",
                lba_bytes=int(fields[4]),
                size_bytes=max(int(fields[5]), 512),
            )
        )
        if max_requests is not None and len(requests) >= max_requests:
            break
    return Trace(name, requests)


def load_msr_trace(
    path: Union[str, Path], max_requests: Optional[int] = None
) -> Trace:
    """Load an MSR CSV file (e.g. ``hm_0.csv``)."""
    path = Path(path)
    with path.open() as handle:
        return parse_msr_csv(handle, name=path.stem, max_requests=max_requests)
