"""Block I/O traces: MSR-Cambridge parsing and synthetic equivalents.

The paper evaluates on eight MSR-Cambridge volume traces.  Those CSVs are
not redistributable, so :mod:`repro.traces.synthetic` generates stand-ins
with the published per-volume read/write mixes, footprints, request-size
profiles and bursty arrivals; :mod:`repro.traces.msr` parses the real CSVs
byte-for-byte when the user has them.
"""

from repro.traces.trace import Trace, TraceRequest
from repro.traces.msr import parse_msr_csv, load_msr_trace
from repro.traces.adapters import (
    TraceAdapter,
    adapter_names,
    get_adapter,
    load_blkparse_trace,
    load_trace,
    parse_blkparse,
    register_adapter,
    sniff_format,
)
from repro.traces.synthetic import (
    MSR_WORKLOADS,
    WorkloadParams,
    generate_workload,
    generate_all_workloads,
)

__all__ = [
    "Trace",
    "TraceRequest",
    "parse_msr_csv",
    "load_msr_trace",
    "TraceAdapter",
    "adapter_names",
    "get_adapter",
    "load_trace",
    "load_blkparse_trace",
    "parse_blkparse",
    "register_adapter",
    "sniff_format",
    "MSR_WORKLOADS",
    "WorkloadParams",
    "generate_workload",
    "generate_all_workloads",
]
