"""Chaos campaigns: run a :class:`FaultPlan` end to end and report recovery.

One campaign exercises both halves of the stack under the same plan:

* a **serving phase** — the hardened :class:`~repro.service.broker.FlashReadService`
  serves the mixed scenario while faults fire; the report carries the
  injected-fault counts, the resilience counters (timeouts, backoffs,
  breaker trips, degraded reads, quarantines) and the accounting identity
  ``served + degraded + shed == offered``;
* a **chip sweep** — wordlines of the aged evaluation block are read with
  the vendor-table baseline policy while flash/ECC faults fire, fanned out
  over :mod:`repro.engine` shards.

Determinism contract: the :class:`ChaosReport` contains **no wall-clock**
quantity, every fault decision is keyed by target identity
(:mod:`repro.faults.injector`), and shard results — including per-shard
fault-count deltas, which would otherwise be lost in worker processes —
merge in canonical shard order.  The same plan + seed therefore produces
byte-identical JSON at any worker count, the property
``tests/test_faults.py`` asserts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from repro.ecc.capability import CapabilityEcc
from repro.engine import ParallelMap, WordlineShard, plan_wordline_shards
from repro.exp.common import eval_stress, sim_spec
from repro.faults import FAULTS, FaultPlan
from repro.flash.chip import FlashChip
from repro.retry.current_flash import CurrentFlashPolicy
from repro.service.broker import FlashReadService, ServiceConfig
from repro.service.profiles import synthetic_profiles
from repro.service.workload import mixed_scenario
from repro.ssd.config import SsdConfig
from repro.ssd.timing import NandTiming


@dataclass(frozen=True)
class _SweepTask:
    """Everything a worker needs to sweep one shard under the campaign.

    The chip and policy are rebuilt worker-side (seed-tree identity makes
    that exact); ``FAULTS.ensure`` installs the campaign's injector in
    whatever process executes the shard."""

    spec: object
    chip_seed: int
    sentinel_ratio: float
    stress: object
    plan: FaultPlan
    fault_seed: int
    pages: Tuple[int, ...]


def _sweep_shard(
    task: _SweepTask, shard: WordlineShard
) -> Tuple[List[tuple], Dict[str, int]]:
    """Read one shard's wordlines; returns (rows, fault-count delta).

    The delta — injections this shard caused, not the injector's absolute
    counters — is what merges deterministically: in serial execution one
    injector accumulates across shards, in parallel execution each worker
    accumulates independently, and the per-shard differences are identical
    either way because every decision is keyed by wordline identity."""
    injector = FAULTS.ensure(task.plan, task.fault_seed)
    before = dict(injector.counts)
    chip = FlashChip(
        task.spec, task.chip_seed, task.sentinel_ratio, cache_wordlines=1
    )
    chip.set_block_stress(shard.block, task.stress)
    policy = CurrentFlashPolicy(
        CapabilityEcc.for_spec(task.spec), task.spec
    )
    rows: List[tuple] = []
    for wl in chip.iter_wordlines(shard.block, shard.wordlines):
        for p in task.pages:
            outcome = policy.read(wl, p)
            rows.append(
                (
                    wl.index,
                    p,
                    outcome.retries,
                    outcome.extra_single_reads,
                    bool(outcome.success),
                )
            )
    after = injector.counts
    delta = {
        kind: after[kind] - before.get(kind, 0)
        for kind in sorted(after)
        if after[kind] != before.get(kind, 0)
    }
    return rows, delta


@dataclass
class ChaosReport:
    """What one chaos campaign produced (wall-clock free, worker-invariant)."""

    plan: Dict[str, Any]
    seed: int
    #: the serving phase's full ServiceReport payload
    service: Dict[str, Any] = field(default_factory=dict)
    #: chip-level read sweep under flash/ECC faults
    sweep: Dict[str, Any] = field(default_factory=dict)
    #: faults injected across both phases, by kind
    faults: Dict[str, int] = field(default_factory=dict)
    #: request accounting of the serving phase; ``balanced`` asserts
    #: served + degraded + shed == offered
    accounting: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = {
            "plan": self.plan,
            "seed": self.seed,
            "service": self.service,
            "sweep": self.sweep,
            "faults": self.faults,
            "accounting": self.accounting,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    def render(self) -> str:
        acc = self.accounting
        lines = [
            f"chaos campaign: {self.plan.get('name')} (seed {self.seed})",
            (
                "faults injected: "
                + (
                    ", ".join(
                        f"{k}={v}" for k, v in sorted(self.faults.items())
                    )
                    or "none"
                )
            ),
            (
                f"service: {acc.get('served', 0)} served + "
                f"{acc.get('degraded', 0)} degraded + "
                f"{acc.get('shed', 0)} shed = {acc.get('offered', 0)} offered "
                f"({'balanced' if acc.get('balanced') else 'IMBALANCED'})"
            ),
        ]
        resilience = self.service.get("resilience", {})
        if resilience:
            lines.append(
                "resilience: "
                + ", ".join(
                    f"{k}={v:g}" for k, v in sorted(resilience.items())
                )
            )
        sweep = self.sweep
        if sweep:
            lines.append(
                f"chip sweep: {sweep.get('reads', 0)} reads, "
                f"{sweep.get('failures', 0)} unrecovered, "
                f"mean retries {sweep.get('mean_retries', 0.0):.2f}"
            )
        return "\n".join(lines)


def run_campaign(
    plan: FaultPlan,
    seed: int = 0,
    kind: str = "tlc",
    smoke: bool = True,
    workers: int = 1,
    n_requests: int = 200,
    sweep_pages: Optional[Tuple[int, ...]] = None,
) -> ChaosReport:
    """Run ``plan`` through the serving layer and a chip-level read sweep.

    ``smoke`` selects the CI-sized configuration (small wordlines, the
    synthetic retry profiles, a thin sweep); the full configuration widens
    the sweep but keeps the synthetic profiles — a campaign stresses the
    recovery machinery, not profile fidelity."""
    cells = 4096 if smoke else 16384
    spec = sim_spec(kind, cells_per_wordline=cells)
    ssd_config = SsdConfig(
        channels=2, dies_per_channel=2, blocks_per_die=64, pages_per_block=64
    )

    # --- serving phase (serial event queue; the broker owns the clock)
    FAULTS.activate(plan, seed)
    try:
        service = FlashReadService(
            spec,
            ssd_config,
            NandTiming(),
            synthetic_profiles(kind),
            seed=seed,
            config=ServiceConfig(),
        )
        clients = mixed_scenario(
            n_requests=n_requests, read_iops=4000.0, footprint_pages=512
        )
        service_report = service.run(
            list(clients), scenario=f"chaos:{plan.name}"
        )
    finally:
        FAULTS.deactivate()

    offered = service_report.issued_total
    degraded = service_report.degraded_total
    shed = service_report.shed_total
    served = service_report.served_total
    accounting = {
        "offered": offered,
        "served": served,
        "degraded": degraded,
        "shed": shed,
        "balanced": bool(served + degraded + shed == offered),
    }

    # --- chip sweep (flash/ECC faults through the real read path)
    divisor = 8 if smoke else 2
    step = max(1, spec.wordlines_per_block // divisor)
    wordlines = range(0, spec.wordlines_per_block, step)
    pages = sweep_pages if sweep_pages is not None else (0,)
    task = _SweepTask(
        spec=spec,
        chip_seed=seed,
        sentinel_ratio=0.002,
        stress=eval_stress(kind),
        plan=plan,
        fault_seed=seed,
        pages=tuple(pages),
    )
    shards = plan_wordline_shards(0, wordlines, workers)
    engine = ParallelMap(workers=workers)
    try:
        per_shard = engine.run(
            partial(_sweep_shard, task), shards, label="chaos-sweep"
        )
    finally:
        # serial execution installed the injector in this process
        FAULTS.deactivate()

    sweep_rows: List[tuple] = []
    sweep_faults: Dict[str, int] = {}
    for rows, delta in per_shard:
        sweep_rows.extend(rows)
        for fault_kind, count in delta.items():
            sweep_faults[fault_kind] = sweep_faults.get(fault_kind, 0) + count

    retry_histogram: Dict[str, int] = {}
    failures = 0
    total_retries = 0
    for _wl, _p, retries, _extra, success in sweep_rows:
        retry_histogram[str(retries)] = retry_histogram.get(str(retries), 0) + 1
        total_retries += retries
        if not success:
            failures += 1
    sweep = {
        "reads": len(sweep_rows),
        "failures": failures,
        "mean_retries": (
            total_retries / len(sweep_rows) if sweep_rows else 0.0
        ),
        "retry_histogram": {
            k: retry_histogram[k]
            for k in sorted(retry_histogram, key=int)
        },
        "faults": {k: sweep_faults[k] for k in sorted(sweep_faults)},
    }

    faults: Dict[str, int] = dict(service_report.faults)
    for fault_kind, count in sweep_faults.items():
        faults[fault_kind] = faults.get(fault_kind, 0) + count

    return ChaosReport(
        plan=plan.to_dict(),
        seed=seed,
        service=json.loads(service_report.to_json()),
        sweep=sweep,
        faults={k: faults[k] for k in sorted(faults)},
        accounting=accounting,
    )
