"""Declarative fault campaigns: what to break, where, when, how often.

A :class:`FaultPlan` is a named list of :class:`FaultSpec` entries.  Each
spec names one fault *kind* (a member of :data:`FAULT_KINDS`), an optional
target selector (dies / blocks / wordlines), an optional virtual-time
schedule window, a per-opportunity probability, and a kind-specific
magnitude.  Plans are pure data: JSON round-trippable, hashable into the
seed tree, and free of any runtime state — the runtime half lives in
:class:`repro.faults.injector.FaultInjector`.

Fault kinds by layer:

==========================  =================================================
kind                        effect (magnitude meaning)
==========================  =================================================
``flash.bitflip``           one read senses extra bit errors beyond the
                            noise model (magnitude = flipped data cells)
``flash.stuck_wordline``    every read of the wordline fails regardless of
                            voltages (magnitude = stuck RBER, default 0.2)
``ecc.miscorrect``          a failing decode is reported as success — silent
                            corruption (magnitude unused)
``ecc.timeout``             a decode that should succeed aborts without
                            converging, forcing a retry (magnitude unused)
``ssd.die_stall``           reads on the die take extra microseconds
                            (magnitude = stall in us)
``ssd.channel_congestion``  all ops slow down by a multiplicative factor
                            (magnitude = factor, > 1)
``service.cache_corrupt``   a voltage-cache hit returns a corrupted entry;
                            detection quarantines the key (magnitude unused)
``service.cache_stale``     a voltage-cache hit serves a silently stale
                            offset; the hinted read fails and is retried
                            cold after backoff (magnitude unused)
``service.scrub_starve``    scrubber passes are suppressed (magnitude unused)
``service.overload_burst``  admission limit collapses to a fraction of its
                            configured value (magnitude = fraction in (0,1])
``env.temperature_step``    ambient temperature steps to a new value for the
                            window (magnitude = temperature in Celsius)
``env.power_loss``          the device loses power inside the window:
                            volatile state — the voltage-offset cache — is
                            gone at the next serving phase (magnitude unused)
==========================  =================================================

Schedule windows (``start_us``/``end_us``) apply to the kinds that see a
virtual clock — the SSD and service layers.  Chip-level kinds (``flash.*``,
``ecc.*``) are clockless; their specs ignore the window.

The ``env.*`` family is **environment dynamics**, not injected faults: the
:class:`~repro.faults.injector.FaultInjector` never draws on them (no hook
site queries the family), so they are inert in chaos runs.  The lifetime
campaign runner (:mod:`repro.campaign`) interprets them instead, on the
**device-lifetime clock**: their ``start_us``/``end_us`` window is read in
*hours* of device life, keeping the plan schema (and its JSON round-trip)
unchanged while the same declarative form drives months-long scenarios.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Optional, Sequence, Tuple

#: The closed set of injectable fault kinds.
FAULT_KINDS = frozenset(
    {
        "flash.bitflip",
        "flash.stuck_wordline",
        "ecc.miscorrect",
        "ecc.timeout",
        "ssd.die_stall",
        "ssd.channel_congestion",
        "service.cache_corrupt",
        "service.cache_stale",
        "service.scrub_starve",
        "service.overload_burst",
        "env.temperature_step",
        "env.power_loss",
    }
)

#: Kind-specific default magnitudes (used when a spec leaves it at None).
DEFAULT_MAGNITUDE: Dict[str, float] = {
    "flash.bitflip": 64.0,
    "flash.stuck_wordline": 0.2,
    "ecc.miscorrect": 0.0,
    "ecc.timeout": 0.0,
    "ssd.die_stall": 30_000.0,
    "ssd.channel_congestion": 1.5,
    "service.cache_corrupt": 0.0,
    "service.cache_stale": 0.0,
    "service.scrub_starve": 0.0,
    "service.overload_burst": 0.1,
    "env.temperature_step": 25.0,
    "env.power_loss": 0.0,
}


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault: kind + target + schedule + probability."""

    kind: str
    probability: float = 1.0
    #: target selectors; None selects everything at that level
    dies: Optional[Tuple[int, ...]] = None
    blocks: Optional[Tuple[int, ...]] = None
    wordlines: Optional[Tuple[int, ...]] = None
    #: virtual-time window; end None = open-ended
    start_us: float = 0.0
    end_us: Optional[float] = None
    #: kind-specific strength; None = :data:`DEFAULT_MAGNITUDE`
    magnitude: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; one of {sorted(FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.start_us < 0:
            raise ValueError("start_us must be non-negative")
        if self.end_us is not None and self.end_us <= self.start_us:
            raise ValueError("end_us must exceed start_us")
        # tuples, not lists, so specs stay hashable seed-tree keys
        for name in ("dies", "blocks", "wordlines"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    # ------------------------------------------------------------------
    @property
    def strength(self) -> float:
        """The effective magnitude (spec value or the kind default)."""
        if self.magnitude is not None:
            return self.magnitude
        return DEFAULT_MAGNITUDE[self.kind]

    def in_window(self, now_us: Optional[float]) -> bool:
        """Whether virtual time ``now_us`` falls inside the schedule.

        ``None`` (clockless chip-level call sites) always matches."""
        if now_us is None:
            return True
        if now_us < self.start_us:
            return False
        return self.end_us is None or now_us < self.end_us

    def targets(
        self,
        die: Optional[int] = None,
        block: Optional[int] = None,
        wordline: Optional[int] = None,
    ) -> bool:
        """Whether the selector matches the given identity coordinates."""
        if self.dies is not None and die is not None and die not in self.dies:
            return False
        if (
            self.blocks is not None
            and block is not None
            and block not in self.blocks
        ):
            return False
        return not (
            self.wordlines is not None
            and wordline is not None
            and wordline not in self.wordlines
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        payload = asdict(self)
        for name in ("dies", "blocks", "wordlines"):
            if payload[name] is not None:
                payload[name] = list(payload[name])
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultSpec":
        known = {
            "kind", "probability", "dies", "blocks", "wordlines",
            "start_us", "end_us", "magnitude",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        kwargs = dict(data)
        for name in ("dies", "blocks", "wordlines"):
            if kwargs.get(name) is not None:
                kwargs[name] = tuple(int(x) for x in kwargs[name])
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A named, reproducible fault campaign."""

    name: str = "none"
    #: folded into every decision stream so two plans with identical specs
    #: but different salts draw independent faults
    seed_salt: int = 0
    specs: Tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("plan name must be non-empty")
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    # ------------------------------------------------------------------
    def by_kind(self, kind: str) -> Tuple[FaultSpec, ...]:
        return tuple(s for s in self.specs if s.kind == kind)

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({s.kind for s in self.specs}))

    def with_specs(self, specs: Sequence[FaultSpec]) -> "FaultPlan":
        return replace(self, specs=tuple(specs))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed_salt": self.seed_salt,
            "specs": [s.to_dict() for s in self.specs],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        unknown = set(data) - {"name", "seed_salt", "specs"}
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(
            name=str(data.get("name", "unnamed")),
            seed_salt=int(data.get("seed_salt", 0)),
            specs=tuple(
                FaultSpec.from_dict(s) for s in data.get("specs", [])
            ),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """The zero-fault campaign: the harness runs, nothing is injected.

        Running under this plan must leave every report byte-identical to a
        run with no fault machinery at all — the differential contract
        ``tests/test_faults.py`` enforces."""
        return cls(name="none", specs=())

    @classmethod
    def standard(cls) -> "FaultPlan":
        """The standard chaos campaign of ``repro chaos --smoke``.

        Windows are sized for the smoke serving scenario (~50-90 ms of
        virtual time): a die stall mid-run, channel congestion early, an
        admission-collapse burst overlapping the stall, scrubber starvation
        for the first half, plus chip-level flash/ECC faults for the read
        sweep."""
        return cls(
            name="standard",
            specs=(
                FaultSpec("ssd.die_stall", probability=1.0, dies=(1,),
                          start_us=15_000.0, end_us=35_000.0,
                          magnitude=30_000.0),
                FaultSpec("ssd.channel_congestion", probability=0.5,
                          start_us=5_000.0, end_us=25_000.0, magnitude=1.5),
                FaultSpec("service.cache_stale", probability=0.15),
                FaultSpec("service.cache_corrupt", probability=0.05),
                FaultSpec("service.scrub_starve", probability=1.0,
                          start_us=0.0, end_us=30_000.0),
                FaultSpec("service.overload_burst", probability=1.0,
                          start_us=20_000.0, end_us=40_000.0, magnitude=0.1),
                FaultSpec("flash.bitflip", probability=0.3, magnitude=96.0),
                FaultSpec("flash.stuck_wordline", probability=0.08),
                FaultSpec("ecc.timeout", probability=0.05),
                FaultSpec("ecc.miscorrect", probability=0.02),
            ),
        )
