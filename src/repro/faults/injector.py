"""The runtime half of fault injection: deterministic per-decision draws.

One :class:`FaultInjector` holds an immutable :class:`~repro.faults.plan.FaultPlan`
plus the campaign seed and answers the hook sites' questions ("does this
read flip bits?", "is this die stalled right now?").  Every decision draws
from a **fresh** seed-tree stream keyed by

``(seed, "faults", seed_salt, kind, *target identity, ordinal)``

where the ordinal is a per-``(kind, target)`` call counter.  Because the
ordinal is scoped to the finest target identity (a wordline, a die, a
cache key) and every target's calls happen in one deterministic order —
a wordline lives wholly inside one engine shard; the broker's event queue
is serial — the decision sequence is independent of worker count and of
unrelated call sites.  That is the determinism contract chaos runs rely
on (``docs/RELIABILITY.md``).

Injection counters (``counts``) live in the injector instance; worker
processes therefore lose them on fork.  The campaign runner accounts for
that by returning per-shard count deltas and merging them in canonical
shard order (:mod:`repro.faults.campaign`).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.faults.plan import FAULT_KINDS, FaultPlan, FaultSpec
from repro.obs import OBS
from repro.util.rng import derive_rng

_MISSING = object()


class FaultInjector:
    """Evaluates a :class:`FaultPlan` deterministically at the hook sites."""

    def __init__(self, plan: FaultPlan, seed: int = 0) -> None:
        self.plan = plan
        self.seed = seed
        self._salt = plan.seed_salt
        self._by_kind: Dict[str, Tuple[FaultSpec, ...]] = {
            kind: plan.by_kind(kind) for kind in FAULT_KINDS
        }
        #: per-(kind, *target) decision counters
        self._ordinals: Dict[tuple, int] = {}
        #: injections performed, by kind
        self.counts: Dict[str, int] = {}
        #: memoized stuck-wordline verdicts (pure function of identity)
        self._stuck: Dict[Tuple[int, int], Optional[FaultSpec]] = {}

    # ------------------------------------------------------------------
    # decision core
    # ------------------------------------------------------------------
    def _decide(
        self,
        kind: str,
        ids: tuple,
        now_us: Optional[float] = None,
        die: Optional[int] = None,
        block: Optional[int] = None,
        wordline: Optional[int] = None,
    ) -> Optional[Tuple[FaultSpec, np.random.Generator]]:
        """First matching spec that fires, with the stream that fired it.

        Returns ``None`` — without advancing any ordinal or drawing any
        randomness — when no spec of the kind matches the target and
        window, so an inactive or zero-fault plan perturbs nothing."""
        specs = self._by_kind[kind]
        if not specs:
            return None
        matching = [
            s for s in specs
            if s.in_window(now_us) and s.targets(die, block, wordline)
        ]
        if not matching:
            return None
        ordinal = self._ordinals.get((kind,) + ids, 0)
        self._ordinals[(kind,) + ids] = ordinal + 1
        rng = derive_rng(self.seed, "faults", self._salt, kind, *ids, ordinal)
        for spec in matching:
            if rng.random() < spec.probability:
                self._record(kind, now_us, die=die, block=block,
                             wordline=wordline)
                return spec, rng
        return None

    def _record(
        self,
        kind: str,
        now_us: Optional[float] = None,
        die: Optional[int] = None,
        block: Optional[int] = None,
        wordline: Optional[int] = None,
    ) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if OBS.enabled:
            if OBS.metrics.enabled:
                OBS.metrics.counter(
                    "repro_faults_injected_total",
                    help="faults injected by the chaos campaign, by kind",
                    kind=kind,
                ).inc()
            if OBS.tracer.enabled:
                fields: Dict[str, object] = {"fault": kind}
                if die is not None:
                    fields["die"] = die
                if block is not None:
                    fields["block"] = block
                if wordline is not None:
                    fields["wordline"] = wordline
                if now_us is not None:
                    fields["ts"] = now_us
                OBS.tracer.emit("fault_injected", **fields)

    def counts_snapshot(self) -> Dict[str, int]:
        return dict(sorted(self.counts.items()))

    # ------------------------------------------------------------------
    # flash layer (clockless; called from Wordline.read_page)
    # ------------------------------------------------------------------
    def _stuck_spec(self, block: int, wordline: int) -> Optional[FaultSpec]:
        """Ordinal-free verdict: stuck-ness is a property of the wordline,
        identical on every read and in every process."""
        key = (block, wordline)
        hit = self._stuck.get(key, _MISSING)
        if hit is not _MISSING:
            return hit  # type: ignore[return-value]
        verdict: Optional[FaultSpec] = None
        specs = self._by_kind["flash.stuck_wordline"]
        if specs:
            matching = [
                s for s in specs if s.targets(block=block, wordline=wordline)
            ]
            if matching:
                rng = derive_rng(
                    self.seed, "faults", self._salt,
                    "flash.stuck_wordline", block, wordline,
                )
                for spec in matching:
                    if rng.random() < spec.probability:
                        verdict = spec
                        break
        self._stuck[key] = verdict
        return verdict

    def flash_read(
        self, block: int, wordline: int, mismatch: np.ndarray, n_errors: int
    ) -> int:
        """Apply flash faults to one page read's error mask, in place.

        Returns the (possibly raised) error count.  A stuck wordline
        overwhelms ECC outright; a bitflip burst flips ``magnitude``
        currently-correct data cells on top of the noise model."""
        stuck = self._stuck_spec(block, wordline)
        if stuck is not None:
            self._record("flash.stuck_wordline", block=block,
                         wordline=wordline)
            target = max(int(stuck.strength * mismatch.shape[0]), 1)
            # spread the stuck errors evenly so every ECC frame is hit
            step = max(mismatch.shape[0] // target, 1)
            mismatch[::step] = True
            return int(mismatch.sum())
        hit = self._decide(
            "flash.bitflip", (block, wordline), block=block, wordline=wordline
        )
        if hit is not None:
            spec, rng = hit
            correct = np.flatnonzero(~mismatch)
            k = min(int(spec.strength), correct.size)
            if k > 0:
                flipped = rng.choice(correct, size=k, replace=False)
                mismatch[flipped] = True
                n_errors += k
        return n_errors

    # ------------------------------------------------------------------
    # ECC layer (clockless; called from ReadPolicy.attempt)
    # ------------------------------------------------------------------
    def ecc_verdict(self, block: int, wordline: int, decoded: bool) -> bool:
        """Possibly override one decode verdict.

        A *miscorrection* turns a failing decode into a reported success
        (silent corruption — the worst ECC failure mode); a *timeout*
        aborts a decode that would have converged, forcing a retry."""
        if decoded:
            hit = self._decide(
                "ecc.timeout", (block, wordline),
                block=block, wordline=wordline,
            )
            return hit is None
        hit = self._decide(
            "ecc.miscorrect", (block, wordline),
            block=block, wordline=wordline,
        )
        return hit is not None

    # ------------------------------------------------------------------
    # SSD layer (virtual-clocked; called from Ssd and the broker)
    # ------------------------------------------------------------------
    def die_stall_us(self, die: int, now_us: float) -> float:
        """Extra die occupancy (microseconds) for one read right now."""
        hit = self._decide("ssd.die_stall", (die,), now_us=now_us, die=die)
        if hit is None:
            return 0.0
        spec, _ = hit
        return float(spec.strength)

    def congestion_factor(self, now_us: float) -> float:
        """Multiplicative slowdown of channel transfers right now."""
        hit = self._decide("ssd.channel_congestion", (), now_us=now_us)
        if hit is None:
            return 1.0
        spec, _ = hit
        return max(float(spec.strength), 1.0)

    # ------------------------------------------------------------------
    # service layer (virtual-clocked; called from the broker)
    # ------------------------------------------------------------------
    def cache_event(
        self, key: Tuple[int, int, int], now_us: float
    ) -> Optional[str]:
        """What happens to one voltage-cache hit: ``"corrupt"`` (detected,
        entry must be quarantined), ``"stale"`` (silently wrong, the hinted
        read fails), or ``None``."""
        die, block, _layer = key
        if self._decide(
            "service.cache_corrupt", key, now_us=now_us, die=die, block=block
        ) is not None:
            return "corrupt"
        if self._decide(
            "service.cache_stale", key, now_us=now_us, die=die, block=block
        ) is not None:
            return "stale"
        return None

    def scrub_starved(self, now_us: float) -> bool:
        """Whether the scrubber's idle pass is suppressed right now."""
        return self._decide(
            "service.scrub_starve", (), now_us=now_us
        ) is not None

    def admit_limit(self, base: int, now_us: float) -> int:
        """The broker's effective admission limit right now."""
        hit = self._decide("service.overload_burst", (), now_us=now_us)
        if hit is None:
            return base
        spec, _ = hit
        return max(1, int(base * spec.strength))
