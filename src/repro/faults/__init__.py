"""Deterministic fault injection (``repro.faults``).

The package mirrors the shape of :mod:`repro.obs`: one module-level
singleton, :data:`FAULTS`, guarded by a plain-bool attribute so every
instrumented hot path pays a single attribute load when chaos is off::

    from repro.faults import FAULTS

    if FAULTS.active:
        n_err = FAULTS.injector.flash_read(block, index, mismatch, n_err)

Campaigns are declared as a :class:`~repro.faults.plan.FaultPlan` (pure
data, JSON round-trippable) and evaluated by a
:class:`~repro.faults.injector.FaultInjector` whose every decision draws
from a fresh seed-tree stream — same plan + same seed means the same
faults, at any worker count.  ``repro chaos`` runs a full campaign via
:func:`repro.faults.campaign.run_campaign` (imported directly, not from
this package root, to keep the hook sites' import graph acyclic).

Fault injection is **off by default**: with :data:`FAULTS` inactive every
simulation is byte-identical to a build without this package, and a run
under an *activated* zero-fault plan (``FaultPlan.none()``) is too — the
differential contract ``tests/test_faults.py`` enforces.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    DEFAULT_MAGNITUDE,
    FAULT_KINDS,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FAULTS",
    "FaultInjection",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FAULT_KINDS",
    "DEFAULT_MAGNITUDE",
    "activate",
    "deactivate",
]


class FaultInjection:
    """The process-wide chaos switch: an injector behind one cheap flag.

    ``active`` is a plain attribute kept equal to ``injector is not None``
    so the chaos-off hot path costs one attribute load and one branch —
    the same overhead contract as :class:`repro.obs.Observability`.
    """

    def __init__(self) -> None:
        self.injector: Optional[FaultInjector] = None
        self.active = False

    # ------------------------------------------------------------------
    def activate(self, plan: FaultPlan, seed: int = 0) -> FaultInjector:
        """Install a fresh injector for ``plan`` (ordinals/counters reset)."""
        self.injector = FaultInjector(plan, seed)
        self.active = True
        return self.injector

    def deactivate(self) -> None:
        self.injector = None
        self.active = False

    def ensure(self, plan: FaultPlan, seed: int = 0) -> FaultInjector:
        """Idempotent activation for worker processes.

        Keeps the current injector when it already runs the same plan and
        seed — under ``fork`` the child inherits the parent's injector and
        must not reset it (per-target ordinals survive); under ``spawn``
        the child starts inactive and gets a fresh one."""
        injector = self.injector
        if (
            self.active
            and injector is not None
            and injector.plan == plan
            and injector.seed == seed
        ):
            return injector
        return self.activate(plan, seed)


#: The process-wide fault-injection singleton every hook site consults.
FAULTS = FaultInjection()


def activate(plan: FaultPlan, seed: int = 0) -> FaultInjector:
    return FAULTS.activate(plan, seed)


def deactivate() -> None:
    FAULTS.deactivate()
