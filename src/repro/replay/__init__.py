"""Trace-driven replay frontend for the serving layer.

Maps block-level trace requests (MSR CSV or synthetic) onto the
:class:`~repro.service.broker.FlashReadService` broker: LBA -> logical
page translation (sharded, byte-identical at any worker count), open-loop
arrival scheduling in virtual time with optional time compression, and
batched die scheduling — co-arriving reads of one (die, block, wordline)
served off a single wordline activation and sentinel inference.

Entry points: :func:`replay_trace` (library), ``python -m repro replay``
(CLI).  See ``docs/SERVICE.md``, section "Trace replay".
"""

from repro.replay.frontend import ReplayConfig, replay_trace
from repro.replay.report import ReplayReport
from repro.replay.translate import (
    LbaTranslator,
    TranslatedRequest,
    plan_request_shards,
    translate_trace,
)

__all__ = [
    "LbaTranslator",
    "ReplayConfig",
    "ReplayReport",
    "TranslatedRequest",
    "plan_request_shards",
    "replay_trace",
    "translate_trace",
]
