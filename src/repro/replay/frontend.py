"""Trace-driven replay: a parsed block trace through the serving layer.

``replay_trace`` is the glue the tentpole hangs on: it shards the pure
LBA translation over worker processes (:mod:`repro.replay.translate`),
turns the result into open-loop :class:`ServiceRequest` streams with
absolute virtual arrivals, and drives :meth:`FlashReadService.run_prepared`
with batched die scheduling optionally enabled — one sentinel inference
per coalesced (die, block, wordline) batch, the paper's amortization
argument under a real arrival process.

Determinism contract: the returned :class:`ReplayReport` serializes
byte-identically for any ``workers`` count, because only the
embarrassingly-parallel preprocessing is sharded — the event simulation
itself runs on one virtual clock.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.flash.spec import FlashSpec
from repro.obs import OBS
from repro.replay.report import ReplayReport
from repro.replay.translate import LbaTranslator, translate_trace
from repro.service.broker import FlashReadService, ServiceConfig
from repro.service.workload import ServiceRequest
from repro.ssd.config import SsdConfig
from repro.ssd.retry_model import RetryProfile
from repro.ssd.timing import NandTiming
from repro.traces.trace import Trace


@dataclass(frozen=True)
class ReplayConfig:
    """Knobs of the replay frontend (the broker keeps its own config)."""

    #: time compression: arrivals land at ``time_s * 1e6 / scale``
    scale: float = 1.0
    batch_enabled: bool = False
    batch_limit: int = 8
    #: translation cap per request (counted in ``truncated_pages``)
    max_pages_per_request: int = 8
    #: SLO-monitor client name; defaults to the trace's name
    client: Optional[str] = None
    #: worker processes for the sharded translation preprocessing
    workers: int = 1
    #: virtual-time spacing of ``replay_tick`` progress events
    tick_interval_us: float = 250_000.0

    def __post_init__(self) -> None:
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.batch_limit < 1:
            raise ValueError("batch_limit must be positive")
        if self.max_pages_per_request < 1:
            raise ValueError("max_pages_per_request must be positive")
        if self.workers < 1:
            raise ValueError("workers must be positive")
        if self.tick_interval_us <= 0:
            raise ValueError("tick_interval_us must be positive")


def replay_trace(
    trace: Trace,
    spec: FlashSpec,
    ssd_config: SsdConfig,
    timing: NandTiming,
    profiles: Dict[str, RetryProfile],
    seed: int = 0,
    config: Optional[ReplayConfig] = None,
    service_config: Optional[ServiceConfig] = None,
) -> ReplayReport:
    """Replay one trace against a fresh serving layer; return the report."""
    cfg = config or ReplayConfig()
    client = cfg.client or trace.name

    translator = LbaTranslator(
        page_bytes=ssd_config.page_user_bytes,
        max_pages_per_request=cfg.max_pages_per_request,
        scale=cfg.scale,
    )
    translated, stats, _engine = translate_trace(
        trace, translator, workers=cfg.workers
    )
    requests = [
        ServiceRequest(
            client=client,
            index=i,
            is_read=t.is_read,
            lpn=t.lpn,
            n_pages=t.n_pages,
            arrival_us=t.arrival_us,
        )
        for i, t in enumerate(translated)
    ]

    svc_cfg = replace(
        service_config or ServiceConfig(),
        batch_enabled=cfg.batch_enabled,
        batch_limit=cfg.batch_limit,
    )
    service = FlashReadService(
        spec, ssd_config, timing, profiles, seed=seed, config=svc_cfg
    )

    # Progress ticks: pre-scheduled snapshots of the accounting state in
    # virtual time.  Tracing-only, and clamped to the last arrival so the
    # report horizon (queue.now at drain) is untouched — the final
    # completion always lands at or after the final arrival.
    if requests and OBS.enabled and OBS.tracer.enabled:
        # traces preserve completion-log order, so arrivals are not
        # necessarily monotone — sort locally for the bisect snapshots
        arrivals = sorted(r.arrival_us for r in requests)
        last_arrival = arrivals[-1]

        def snapshot(ts: float) -> None:
            # push the SLO watermark so a client that went quiet still
            # closes its trailing windows mid-run (this is what makes
            # `repro stats --follow` show windows advancing live)
            service.slo.advance_watermark(ts)
            acct = service.slo.clients.get(client)
            completed = acct.completed if acct else 0
            shed = acct.shed if acct else 0
            OBS.tracer.emit(
                "replay_tick",
                ts=ts,
                offered=bisect_right(arrivals, ts),
                completed=completed,
                shed=shed,
            )

        tick = cfg.tick_interval_us
        while tick <= last_arrival:
            service.queue.schedule(tick, lambda t=tick: snapshot(t))
            tick += cfg.tick_interval_us

    service_report = service.run_prepared(
        {client: requests}, scenario=f"replay:{trace.name}"
    )

    offered = len(requests)
    served = service_report.served_total
    degraded = service_report.degraded_total
    shed = service_report.shed_total
    accounting = {
        "offered": offered,
        "served": served,
        "degraded": degraded,
        "shed": shed,
        "balanced": int(served + degraded + shed == offered),
    }

    # Rate guards (trace.duration_s is 0 for <= 1 request; an empty trace
    # leaves the horizon at 0): degenerate denominators report 0, not a
    # ZeroDivisionError.
    duration_s = trace.duration_s
    scaled_duration_s = duration_s / cfg.scale
    offered_iops = offered / scaled_duration_s if scaled_duration_s > 0 else 0.0
    horizon_us = service_report.horizon_us
    completed_iops = (
        service_report.completed_total / (horizon_us / 1e6)
        if horizon_us > 0 else 0.0
    )

    if OBS.enabled and OBS.metrics.enabled:
        m = OBS.metrics
        m.counter(
            "repro_replay_requests_total",
            help="trace requests offered to the replay frontend",
            trace=trace.name, op="read",
        ).inc(stats["reads"])
        m.counter(
            "repro_replay_requests_total",
            help="trace requests offered to the replay frontend",
            trace=trace.name, op="write",
        ).inc(stats["writes"])
        m.counter(
            "repro_replay_clamped_records_total",
            help="sub-sector trace records clamped by the parser",
            trace=trace.name,
        ).inc(int(trace.meta.get("clamped_records", 0)))
        m.counter(
            "repro_replay_truncated_pages_total",
            help="pages cut from oversized requests by the translation cap",
            trace=trace.name,
        ).inc(stats["truncated_pages"])
        if cfg.batch_enabled:
            m.counter(
                "repro_replay_batches_total",
                help="batches formed by the batched die scheduler",
                trace=trace.name,
            ).inc(service.batch_stats["batches"])
            m.counter(
                "repro_replay_coalesced_reads_total",
                help="reads coalesced behind a batch leader",
                trace=trace.name,
            ).inc(service.batch_stats["coalesced_reads"])

    return ReplayReport(
        trace_name=trace.name,
        seed=seed,
        scale=cfg.scale,
        batch_enabled=cfg.batch_enabled,
        offered=offered,
        reads=stats["reads"],
        writes=stats["writes"],
        read_pages=stats["read_pages"],
        write_pages=stats["write_pages"],
        clamped_records=int(trace.meta.get("clamped_records", 0)),
        truncated_pages=stats["truncated_pages"],
        trace_duration_s=duration_s,
        horizon_us=horizon_us,
        offered_iops=offered_iops,
        completed_iops=completed_iops,
        accounting=accounting,
        service=json.loads(service_report.to_json()),
    )
