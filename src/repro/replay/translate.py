"""Block-address translation: ``TraceRequest`` -> logical page extents.

MSR-style traces speak byte offsets on a volume; the serving layer speaks
logical pages (and its FTL maps those to physical (die, block, page)
slots).  :class:`LbaTranslator` does the first hop — LBA bytes to a
``(first_lpn, n_pages)`` extent, time-scaled virtual arrival included —
and is deliberately a pure per-request function so the preprocessing
stage shards across worker processes with byte-identical results at any
worker count (the :mod:`repro.engine` contract).

Oversized requests are capped at ``max_pages_per_request`` pages (the
broker's per-die queue limits make a 256-page chain unadmittable anyway);
the cut is *counted* in ``truncated_pages``, never silent, mirroring how
the MSR parser surfaces its sector clamp.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine import EngineReport, run_sharded
from repro.engine.shards import SHARDS_PER_WORKER
from repro.traces.trace import Trace, TraceRequest


@dataclass(frozen=True)
class TranslatedRequest:
    """One trace request in the serving layer's units."""

    is_read: bool
    lpn: int  # first logical page
    n_pages: int
    arrival_us: float  # scaled virtual arrival


class LbaTranslator:
    """Pure LBA-bytes -> logical-page-extent translation.

    ``scale`` compresses trace time: arrivals land at
    ``time_s * 1e6 / scale`` virtual microseconds, so ``scale=20`` replays
    a lightly-loaded volume trace at 20x its recorded rate (the usual
    accelerated-replay methodology of trace-driven SSD studies).
    """

    def __init__(
        self,
        page_bytes: int,
        max_pages_per_request: int = 8,
        scale: float = 1.0,
    ) -> None:
        if page_bytes < 512:
            raise ValueError("page_bytes must be at least one sector")
        if max_pages_per_request < 1:
            raise ValueError("max_pages_per_request must be positive")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.page_bytes = page_bytes
        self.max_pages_per_request = max_pages_per_request
        self.scale = scale

    def translate(self, req: TraceRequest) -> Tuple[TranslatedRequest, int]:
        """One request -> (translated extent, pages cut by the cap)."""
        first = req.lba_bytes // self.page_bytes
        last = (req.lba_bytes + req.size_bytes - 1) // self.page_bytes
        n_pages = int(last - first + 1)
        truncated = max(0, n_pages - self.max_pages_per_request)
        return (
            TranslatedRequest(
                is_read=req.is_read,
                lpn=int(first),
                n_pages=n_pages - truncated,
                arrival_us=req.time_s * 1e6 / self.scale,
            ),
            truncated,
        )


class _TranslateShardFn:
    """Picklable shard worker: translate one contiguous request run.

    A class (not a closure) so it ships into
    :class:`repro.engine.ParallelMap` worker processes.
    """

    def __init__(self, translator: LbaTranslator) -> None:
        self.translator = translator

    def __call__(
        self, chunk: Tuple[TraceRequest, ...]
    ) -> Dict[str, object]:
        requests: List[TranslatedRequest] = []
        stats = {
            "reads": 0, "writes": 0,
            "read_pages": 0, "write_pages": 0,
            "truncated_pages": 0,
        }
        for req in chunk:
            translated, truncated = self.translator.translate(req)
            requests.append(translated)
            stats["truncated_pages"] += truncated
            if translated.is_read:
                stats["reads"] += 1
                stats["read_pages"] += translated.n_pages
            else:
                stats["writes"] += 1
                stats["write_pages"] += translated.n_pages
        return {"requests": requests, "stats": stats}


def plan_request_shards(
    requests: Sequence[TraceRequest],
    workers: int,
    shards_per_worker: int = SHARDS_PER_WORKER,
) -> List[Tuple[TraceRequest, ...]]:
    """Contiguous near-equal request runs in canonical (trace) order.

    Concatenating the shards in list order reproduces the input order
    exactly — the merge contract that keeps sharded preprocessing
    byte-identical to serial.
    """
    items = list(requests)
    if not items:
        return []
    if workers <= 1:
        return [tuple(items)]
    n_shards = max(1, min(len(items), workers * max(1, shards_per_worker)))
    base, rem = divmod(len(items), n_shards)
    shards: List[Tuple[TraceRequest, ...]] = []
    start = 0
    for k in range(n_shards):
        size = base + (1 if k < rem else 0)
        shards.append(tuple(items[start:start + size]))
        start += size
    return shards


def translate_trace(
    trace: Trace,
    translator: LbaTranslator,
    workers: int = 1,
) -> Tuple[List[TranslatedRequest], Dict[str, int], Optional[EngineReport]]:
    """Translate a whole trace, sharded over ``workers`` processes.

    Returns ``(requests in trace order, summed stats, engine report)`` —
    the request list and stats are byte-identical at any worker count;
    only the engine report (wall-clock accounting) varies, and it never
    feeds the replay report's JSON.
    """
    stats = {
        "reads": 0, "writes": 0,
        "read_pages": 0, "write_pages": 0,
        "truncated_pages": 0,
    }
    shards = plan_request_shards(trace.requests, workers)
    if not shards:
        return [], stats, None
    results, engine_report = run_sharded(
        _TranslateShardFn(translator), shards, workers=workers,
        label="replay-translate",
    )
    requests: List[TranslatedRequest] = []
    for result in results:
        requests.extend(result["requests"])
        for key in stats:
            stats[key] += result["stats"][key]
    return requests, stats, engine_report
