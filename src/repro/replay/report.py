"""The replay report: what one trace replay produced.

Deterministic and **worker-count-free**: every field derives from the
virtual-time simulation and the trace itself, so ``to_json()`` is
byte-identical across ``--workers 1/2/4`` (the engine's wall-clock
accounting deliberately never lands here).  The request accounting
identity carried over from the chaos subsystem —
``served + degraded + shed == offered`` — is evaluated in
:attr:`accounting` and turned into an exit status by ``repro replay``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List


@dataclass
class ReplayReport:
    """Aggregates of one trace replay through the serving layer."""

    trace_name: str
    seed: int
    #: time compression applied to the trace's arrivals
    scale: float
    batch_enabled: bool
    #: offered = every request of the (possibly truncated) trace
    offered: int
    reads: int
    writes: int
    #: pages the LBA translation produced, by direction
    read_pages: int = 0
    write_pages: int = 0
    #: MSR parser's sector clamp count (``Trace.meta``)
    clamped_records: int = 0
    #: pages cut from oversized requests by the translation cap
    truncated_pages: int = 0
    #: last-minus-first arrival of the source trace (0 for <= 1 request)
    trace_duration_s: float = 0.0
    #: virtual horizon of the replay
    horizon_us: float = 0.0
    #: offered / scaled trace duration; 0 when the duration is degenerate
    offered_iops: float = 0.0
    #: completions / virtual horizon; 0 when the horizon is degenerate
    completed_iops: float = 0.0
    #: offered/served/degraded/shed counts plus the ``balanced`` verdict
    accounting: Dict[str, int] = field(default_factory=dict)
    #: the embedded ``ServiceReport`` payload (already JSON-shaped)
    service: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def balanced(self) -> bool:
        return bool(self.accounting.get("balanced", False))

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        payload = asdict(self)
        # JSON has no int-keyed objects; mirror ServiceReport's massaging
        # (the embedded service payload is already stringified)
        payload["accounting"] = {
            k: (bool(v) if k == "balanced" else int(v))
            for k, v in sorted(self.accounting.items())
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    # ------------------------------------------------------------------
    def render(self) -> str:
        acc = self.accounting
        lines: List[str] = [
            (
                f"replay report: {self.trace_name} (seed {self.seed}, "
                f"scale x{self.scale:g}, batching "
                f"{'on' if self.batch_enabled else 'off'})"
            ),
            (
                f"  offered {self.offered} requests "
                f"({self.reads} reads / {self.writes} writes; "
                f"{self.read_pages} read pages, {self.write_pages} "
                f"write pages)"
            ),
            (
                f"  trace span {self.trace_duration_s:.3f}s -> "
                f"{self.horizon_us / 1e6:.3f}s virtual; offered "
                f"{self.offered_iops:.0f} IOPS, completed "
                f"{self.completed_iops:.0f} IOPS"
            ),
            (
                f"  accounting: {acc.get('served', 0)} served + "
                f"{acc.get('degraded', 0)} degraded + "
                f"{acc.get('shed', 0)} shed = "
                f"{acc.get('served', 0) + acc.get('degraded', 0) + acc.get('shed', 0)} "
                f"vs {acc.get('offered', 0)} offered "
                f"({'balanced' if self.balanced else 'IMBALANCED'})"
            ),
        ]
        if self.clamped_records or self.truncated_pages:
            lines.append(
                f"  touched up: {self.clamped_records} sub-sector records "
                f"clamped, {self.truncated_pages} pages cut from oversized "
                f"requests"
            )
        batch = self.service.get("batch") or {}
        if batch:
            lines.append(
                f"  batches: {batch.get('batches', 0):.0f} served "
                f"{batch.get('coalesced_reads', 0):.0f} coalesced reads "
                f"(largest {batch.get('max_batch', 0):.0f})"
            )
        cache = self.service.get("cache") or {}
        if cache:
            lines.append(
                f"  voltage cache: {cache.get('hits', 0):.0f}/"
                f"{cache.get('lookups', 0):.0f} hits "
                f"({cache.get('hit_rate', 0.0):.1%})"
            )
        return "\n".join(lines)
