PYTHON ?= python

.PHONY: install test coverage lint bench bench-smoke examples figures serve-smoke chaos-smoke replay-smoke obs-smoke fleet-smoke tournament-smoke campaign-smoke clean

install:
	pip install -e .[test]

test:
	$(PYTHON) -m pytest tests/

coverage:
	$(PYTHON) -m pytest tests/ --cov=repro --cov-report=term-missing \
		--cov-fail-under=70

lint:
	$(PYTHON) -m ruff check src tests benchmarks examples

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-smoke:
	$(PYTHON) -m repro bench --smoke --check --json benchmarks/BENCH_core.json

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/characterize_and_deploy.py
	$(PYTHON) examples/temperature_study.py
	$(PYTHON) examples/ecc_comparison.py
	$(PYTHON) examples/distribution_explorer.py
	$(PYTHON) examples/figure_gallery.py
	$(PYTHON) examples/ssd_trace_simulation.py

figures:
	$(PYTHON) -m repro figure fig13
	$(PYTHON) -m repro figure table1 --kind qlc

serve-smoke:
	$(PYTHON) -m repro serve --smoke --seed 1 --requests 300

chaos-smoke:
	$(PYTHON) -m repro chaos --smoke --seed 1 --workers 2

replay-smoke:
	$(PYTHON) -m repro replay --trace tests/data/msr_sample.csv --smoke \
		--batch --workers 2 --json .replay-smoke.json

obs-smoke:
	$(PYTHON) -m repro replay --synthetic hm_0 --smoke --seed 1 \
		--obs-trace .obs-smoke-trace.jsonl \
		--obs-spans .obs-smoke-spans.jsonl \
		--obs-prom .obs-smoke-metrics.prom
	$(PYTHON) -m repro stats .obs-smoke-trace.jsonl
	$(PYTHON) -m repro spans .obs-smoke-spans.jsonl --check --top 1

fleet-smoke:
	$(PYTHON) -m repro fleet --smoke --seed 1 --workers 2 \
		--json .fleet-smoke.json

tournament-smoke:
	$(PYTHON) -m repro tournament --smoke --check --workers 2 \
		--json .tournament-smoke.json

campaign-smoke:
	$(PYTHON) -m repro campaign --smoke --workers 2 \
		--json .campaign-smoke.json

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
